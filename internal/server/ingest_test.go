package server

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/provdata"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/xmlio"
)

// newIngestServer builds a server over an empty (spec-only) mem store
// with the write path enabled.
func newIngestServer(t *testing.T, cfg Config) (*Server, *store.Store) {
	t.Helper()
	st, err := store.NewMem(spec.PaperSpec(), "paper")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = st
	cfg.EnableIngest = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, st
}

// encodeRun renders a run (with optional data items) as the XML document
// the ingest endpoint accepts.
func encodeRun(t testing.TB, r *run.Run, ann *provdata.Annotation) string {
	t.Helper()
	var buf bytes.Buffer
	if err := xmlio.EncodeRun(&buf, r, ann, "paper"); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestIngest(t *testing.T) {
	s, _ := newIngestServer(t, Config{})
	rng := rand.New(rand.NewSource(11))
	sp := spec.PaperSpec()
	r, _ := run.GenerateSized(sp, rng, 120)
	ann := provdata.RandomItems(r, rng, 1.2, 0.3)

	var put struct {
		Run             string `json:"run"`
		Vertices        int    `json:"vertices"`
		DataItems       int    `json:"data_items"`
		SnapshotVersion string `json:"snapshot_version"`
		SnapshotBytes   int    `json:"snapshot_bytes"`
	}
	rec := do(t, s, "PUT", "/runs/r1", encodeRun(t, r, ann), &put)
	if rec.Code != 200 {
		t.Fatalf("PUT /runs/r1: %d %s", rec.Code, rec.Body.String())
	}
	if put.Run != "r1" || put.Vertices != r.NumVertices() || put.DataItems != len(ann.Items) {
		t.Fatalf("PUT response = %+v, want run r1 with %d vertices, %d items", put, r.NumVertices(), len(ann.Items))
	}
	if put.SnapshotVersion != "SKL2" || put.SnapshotBytes <= 0 {
		t.Fatalf("PUT response snapshot = %+v, want SKL2 with positive size", put)
	}

	// The run is immediately queryable and the answers match direct
	// graph search.
	searcher := dag.NewSearcher(r.Graph)
	n := r.NumVertices()
	for q := 0; q < 100; q++ {
		u, v := dag.VertexID(rng.Intn(n)), dag.VertexID(rng.Intn(n))
		var resp struct {
			Reachable bool `json:"reachable"`
		}
		rec := do(t, s, "GET", fmt.Sprintf("/reachable?run=r1&from=%d&to=%d", u, v), "", &resp)
		if rec.Code != 200 {
			t.Fatalf("reachable after ingest: %d %s", rec.Code, rec.Body.String())
		}
		if want := searcher.ReachableBFS(u, v); resp.Reachable != want {
			t.Fatalf("(%d,%d) after ingest: got %v want %v", u, v, resp.Reachable, want)
		}
	}

	var runs struct {
		Runs []string `json:"runs"`
	}
	do(t, s, "GET", "/runs", "", &runs)
	if len(runs.Runs) != 1 || runs.Runs[0] != "r1" {
		t.Fatalf("/runs after ingest = %+v", runs)
	}

	// Cache membership is driven by queries, not ingest: a PUT of a
	// never-queried name must not occupy (or evict from) the LRU.
	r2, _ := run.GenerateSized(sp, rng, 60)
	if rec := do(t, s, "PUT", "/runs/unqueried", encodeRun(t, r2, nil), nil); rec.Code != 200 {
		t.Fatalf("PUT unqueried: %d", rec.Code)
	}
	if cs := s.Stats(); cs.Cached != 1 {
		t.Fatalf("cache after un-queried PUT = %+v, want only the queried session resident", cs)
	}
}

// TestIngestOverwriteInvalidatesCache proves the cache-coherence
// contract: after an overwriting PUT, the very next query must see the
// new run — a stale cached session would otherwise keep answering for
// the old graph indefinitely (mem stores never miss again once warm).
func TestIngestOverwriteInvalidatesCache(t *testing.T) {
	s, _ := newIngestServer(t, Config{})
	sp := spec.PaperSpec()
	runA, _ := run.GenerateSized(sp, rand.New(rand.NewSource(1)), 100)
	runB, _ := run.GenerateSized(sp, rand.New(rand.NewSource(2)), 220)
	if runA.NumVertices() == runB.NumVertices() {
		t.Fatal("test needs runs of different sizes")
	}

	if rec := do(t, s, "PUT", "/runs/r", encodeRun(t, runA, nil), nil); rec.Code != 200 {
		t.Fatalf("first PUT: %d", rec.Code)
	}
	var detail struct {
		Vertices int `json:"vertices"`
	}
	do(t, s, "GET", "/runs?run=r", "", &detail) // warm the cache on runA
	if detail.Vertices != runA.NumVertices() {
		t.Fatalf("before overwrite: %d vertices, want %d", detail.Vertices, runA.NumVertices())
	}
	if rec := do(t, s, "PUT", "/runs/r", encodeRun(t, runB, nil), nil); rec.Code != 200 {
		t.Fatalf("overwriting PUT: %d", rec.Code)
	}
	do(t, s, "GET", "/runs?run=r", "", &detail)
	if detail.Vertices != runB.NumVertices() {
		t.Fatalf("after overwrite: %d vertices, want %d (stale session served)", detail.Vertices, runB.NumVertices())
	}
	if st := s.Stats(); st.Invalidations < 1 {
		t.Fatalf("stats after overwrite = %+v, want >= 1 invalidation", st)
	}
}

func TestIngestRejections(t *testing.T) {
	s, _ := newIngestServer(t, Config{MaxIngestBytes: 4096})
	sp := spec.PaperSpec()
	r, _ := run.GenerateSized(sp, rand.New(rand.NewSource(3)), 40)
	good := encodeRun(t, r, nil)

	cases := []struct {
		name, target, body string
		want               int
	}{
		{"invalid run name", "/runs/..evil", good, 400},
		{"malformed xml", "/runs/ok", "<run><nope", 400},
		{"wrong document", "/runs/ok", "<workflow></workflow>", 400},
		{"oversized body", "/runs/ok", good + strings.Repeat("<!-- pad -->", 4096), 413},
	}
	for _, c := range cases {
		var e struct {
			Error string `json:"error"`
		}
		rec := do(t, s, "PUT", c.target, c.body, &e)
		if rec.Code != c.want {
			t.Errorf("%s: status %d (want %d), body %s", c.name, rec.Code, c.want, rec.Body.String())
		}
		if e.Error == "" {
			t.Errorf("%s: no error message", c.name)
		}
	}

	// GET on a run path is the status endpoint: 404 for a run that does
	// not exist, not a method mismatch.
	if rec := do(t, s, "GET", "/runs/nosuch", "", nil); rec.Code != 404 {
		t.Errorf("GET /runs/nosuch = %d, want 404", rec.Code)
	}

	// A read-only server refuses the write path outright.
	st, err := store.NewMem(sp, "paper")
	if err != nil {
		t.Fatal(err)
	}
	ro, err := New(Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if rec := do(t, ro, "PUT", "/runs/ok", good, nil); rec.Code != 403 {
		t.Errorf("PUT on read-only server = %d, want 403", rec.Code)
	}
}

// gatedBackend delays ReadRun until the gate closes, simulating a slow
// substrate so admission tests can hold a request in flight on demand.
type gatedBackend struct {
	store.Backend
	gate    chan struct{}
	loading chan struct{} // receives one value per ReadRun entry
}

func (b *gatedBackend) ReadRun(name string) (io.ReadCloser, error) {
	select {
	case b.loading <- struct{}{}:
	default:
	}
	<-b.gate
	return b.Backend.ReadRun(name)
}

// TestAdmissionQueueSaturation drives the concurrency gate to its
// bounds: with one slot and a queue of one, the third concurrent
// request must shed with 429 + Retry-After while the first two complete
// once the store unblocks.
func TestAdmissionQueueSaturation(t *testing.T) {
	gb := &gatedBackend{
		Backend: store.NewMemBackend(),
		gate:    make(chan struct{}),
		loading: make(chan struct{}, 8),
	}
	st, err := store.New(gb, spec.PaperSpec(), "paper")
	if err != nil {
		t.Fatal(err)
	}
	r, _ := run.GenerateSized(spec.PaperSpec(), rand.New(rand.NewSource(5)), 80)
	if err := st.PutRun("r", r, nil, label.TCM{}); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Store: st, MaxInflight: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}

	type result struct{ code int }
	results := make(chan result, 2)
	query := func() {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", "/reachable?run=r&from=0&to=1", nil))
		results <- result{rec.Code}
	}
	go query()
	<-gb.loading // request 1 holds the slot inside the store load
	go query()
	waitFor(t, func() bool { return s.AdmissionState().Queued == 1 }, "second request queued")

	// Slot busy, queue full: request 3 is shed immediately.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/reachable?run=r&from=0&to=1", nil))
	if rec.Code != 429 {
		t.Fatalf("saturated request = %d, want 429 (body %s)", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}

	// /healthz stays reachable while the gate is saturated.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("/healthz under saturation = %d", rec.Code)
	}

	close(gb.gate)
	for i := 0; i < 2; i++ {
		if res := <-results; res.code != 200 {
			t.Fatalf("queued request %d finished with %d", i, res.code)
		}
	}
	adm := s.AdmissionState()
	if adm.RejectedQueue != 1 || adm.Admitted != 2 || adm.Inflight != 0 || adm.Queued != 0 {
		t.Fatalf("admission stats = %+v", adm)
	}
	if adm.PeakInflight > 1 {
		t.Fatalf("peak inflight %d exceeded the configured bound 1", adm.PeakInflight)
	}
}

func TestAdmissionRateLimit(t *testing.T) {
	s, _ := newIngestServer(t, Config{RatePerClient: 1, RateBurst: 2})
	// Freeze the clock so bucket refill is deterministic.
	now := time.Unix(1000, 0)
	s.adm.now = func() time.Time { return now }

	get := func(client string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", "/runs", nil)
		if client != "" {
			req.Header.Set("X-Client-ID", client)
		}
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		return rec
	}
	// Burst of 2 passes, third is limited.
	for i := 0; i < 2; i++ {
		if rec := get("alice"); rec.Code != 200 {
			t.Fatalf("request %d: %d", i, rec.Code)
		}
	}
	rec := get("alice")
	if rec.Code != 429 {
		t.Fatalf("over-rate request = %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	// Another client is unaffected; rejected requests count in stats.
	if rec := get("bob"); rec.Code != 200 {
		t.Fatalf("other client: %d", rec.Code)
	}
	if adm := s.AdmissionState(); adm.RejectedRate != 1 || adm.RateLimitedClients != 2 {
		t.Fatalf("admission stats = %+v", adm)
	}
	// One second later alice has one token again.
	now = now.Add(time.Second)
	if rec := get("alice"); rec.Code != 200 {
		t.Fatalf("after refill: %d", rec.Code)
	}
}

// TestAdmissionShedRefundsToken: a request shed by the full queue did
// no work, so it must not consume the client's rate-limit token — a
// client honoring the capacity 429's Retry-After must not then eat a
// rate 429 for a request that never executed.
func TestAdmissionShedRefundsToken(t *testing.T) {
	a := newAdmission(1, 0, 1, 1) // one slot, no queue, 1 rps with burst 1
	now := time.Unix(1000, 0)
	a.now = func() time.Time { return now }
	newReq := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", "/runs", nil)
		req.Header.Set("X-Client-ID", "c")
		rec := httptest.NewRecorder()
		if release, ok := a.admit(rec, req); ok {
			release()
			rec.Code = 200
		}
		return rec
	}
	a.slots <- struct{}{} // occupy the only slot
	if rec := newReq(); rec.Code != 429 {
		t.Fatalf("request against a full queue = %d, want 429", rec.Code)
	}
	<-a.slots // capacity recovers; the client retries per Retry-After
	if rec := newReq(); rec.Code != 200 {
		t.Fatalf("retry after capacity 429 = %d, want 200 (token was not refunded)", rec.Code)
	}
}

// TestWarmRestart is the warm-cache persistence loop: serve, save the
// hot list, "restart" (a fresh server over a reopened store), preload,
// and prove the first queries are cache hits that never touch disk.
func TestWarmRestart(t *testing.T) {
	dir, st := newTestStore(t)
	s1 := newTestServer(t, st, 4, 100)
	for _, name := range []string{"beta", "alpha"} { // alpha most recent
		if rec := do(t, s1, "GET", "/reachable?run="+name+"&from=a1&to=0", "", nil); rec.Code != 200 {
			t.Fatalf("warmup %s: %d", name, rec.Code)
		}
	}
	if err := s1.SaveHotList(); err != nil {
		t.Fatal(err)
	}

	// Restart: reopen the store from disk, warm, then delete the run
	// files — every query answered after this point provably came from
	// the preloaded cache.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newTestServer(t, st2, 4, 100)
	n, err := s2.WarmFromHotList()
	if err != nil || n != 2 {
		t.Fatalf("WarmFromHotList = %d, %v; want 2", n, err)
	}
	if cs := s2.Stats(); cs.Cached != 2 || cs.Misses != 2 || cs.Hits != 0 {
		t.Fatalf("stats after warm = %+v", cs)
	}
	if err := os.RemoveAll(filepath.Join(dir, "runs")); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alpha", "beta"} {
		if rec := do(t, s2, "GET", "/reachable?run="+name+"&from=a1&to=0", "", nil); rec.Code != 200 {
			t.Fatalf("warm query %s hit the disk: %d", name, rec.Code)
		}
	}
	if cs := s2.Stats(); cs.Hits != 2 || cs.Misses != 2 {
		t.Fatalf("stats after warm queries = %+v (first queries were cold)", cs)
	}

	// The saved list is MRU-first: alpha was queried last on s1.
	names, err := st2.ReadHotList()
	if err != nil || len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("hot list = %v, %v; want [alpha beta]", names, err)
	}
}

// TestWarmSkipsStaleEntries: a hot list referencing a deleted run warms
// what it can and skips the rest — stale entries cost one failed load,
// never a failed startup.
func TestWarmSkipsStaleEntries(t *testing.T) {
	dir, st := newTestStore(t)
	if err := st.WriteHotList([]string{"alpha", "ghost", "beta"}); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, st, 4, 100)
	n, err := s.WarmFromHotList()
	if err != nil || n != 2 {
		t.Fatalf("WarmFromHotList with stale entry = %d, %v; want 2", n, err)
	}
	if cs := s.Stats(); cs.Cached != 2 {
		t.Fatalf("stats = %+v, want 2 cached", cs)
	}
	_ = dir
}

// TestIngestStress is the write-path concurrency audit (run under
// -race): concurrent writers overwriting one shared run name and
// writing distinct names, while readers query throughout. Afterwards
// the queue bounds must have held, no update may be lost, and the
// cache/admission gauges must be back to idle.
func TestIngestStress(t *testing.T) {
	const (
		writers  = 4
		readers  = 6
		rounds   = 8
		inflight = 4
	)
	s, _ := newIngestServer(t, Config{CacheSize: 4, MaxInflight: inflight, QueueDepth: 256})
	sp := spec.PaperSpec()
	docs := make([]string, writers)
	sizes := make([]int, writers)
	for g := range docs {
		r, _ := run.GenerateSized(sp, rand.New(rand.NewSource(int64(100+g))), 80+20*g)
		docs[g] = encodeRun(t, r, nil)
		sizes[g] = r.NumVertices()
	}

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Alternate between the shared, contended name and a
				// private one: same-name serialization and distinct-name
				// parallelism both get exercised.
				name := "hot"
				if i%2 == 1 {
					name = fmt.Sprintf("w%d-%d", g, i)
				}
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest("PUT", "/runs/"+name, strings.NewReader(docs[g])))
				if rec.Code != 200 {
					t.Errorf("PUT %s: %d %s", name, rec.Code, rec.Body.String())
					return
				}
			}
		}()
	}
	for g := 0; g < readers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 40; i++ {
				var target string
				switch i % 3 {
				case 0:
					target = "/runs?run=hot"
				case 1:
					target = fmt.Sprintf("/reachable?run=hot&from=%d&to=%d", rng.Intn(40), rng.Intn(40))
				default:
					target = "/runs"
				}
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
				// 404 is legal before the first PUT lands; 5xx never is.
				if rec.Code != 200 && rec.Code != 404 {
					t.Errorf("GET %s: %d %s", target, rec.Code, rec.Body.String())
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	adm := s.AdmissionState()
	if adm.PeakInflight > inflight {
		t.Fatalf("peak inflight %d exceeded bound %d", adm.PeakInflight, inflight)
	}
	if adm.Inflight != 0 || adm.Queued != 0 || adm.RejectedQueue != 0 {
		t.Fatalf("admission gauges not idle after stress: %+v", adm)
	}
	cs := s.Stats()
	if cs.Cached > 4 {
		t.Fatalf("cache over capacity: %+v", cs)
	}

	// No lost update: a final PUT must win, and its content must be what
	// every subsequent query sees.
	final, _ := run.GenerateSized(sp, rand.New(rand.NewSource(999)), 300)
	if rec := do(t, s, "PUT", "/runs/hot", encodeRun(t, final, nil), nil); rec.Code != 200 {
		t.Fatalf("final PUT: %d", rec.Code)
	}
	var detail struct {
		Vertices int `json:"vertices"`
	}
	do(t, s, "GET", "/runs?run=hot", "", &detail)
	if detail.Vertices != final.NumVertices() {
		t.Fatalf("final state has %d vertices, want %d (lost update)", detail.Vertices, final.NumVertices())
	}
	// The storm's intermediate states must all have been one of the
	// written documents — check the store's final listing is complete:
	// every private name from every round landed.
	var runs struct {
		Runs []string `json:"runs"`
	}
	do(t, s, "GET", "/runs", "", &runs)
	want := 1 + writers*rounds/2 // "hot" + every odd round's private name
	if len(runs.Runs) != want {
		t.Fatalf("store holds %d runs after stress, want %d: %v", len(runs.Runs), want, runs.Runs)
	}
}

// TestIngestNoTornSessions pins the write/load coherence fix: with a
// one-entry cache, a reader that forces cold loads of a run while a
// writer keeps overwriting it must never observe a torn session — an
// old run document paired with new labels surfaces as a 500 (vertex
// count mismatch) when the sizes differ, or as silently wrong answers
// when they happen to match. The per-name reader/writer lock makes
// every load see a complete pair.
func TestIngestNoTornSessions(t *testing.T) {
	s, _ := newIngestServer(t, Config{CacheSize: 1})
	sp := spec.PaperSpec()
	runA, _ := run.GenerateSized(sp, rand.New(rand.NewSource(31)), 80)
	runB, _ := run.GenerateSized(sp, rand.New(rand.NewSource(32)), 160)
	docA, docB := encodeRun(t, runA, nil), encodeRun(t, runB, nil)
	sizes := map[int]bool{runA.NumVertices(): true, runB.NumVertices(): true}
	other, _ := run.GenerateSized(sp, rand.New(rand.NewSource(33)), 60)
	if rec := do(t, s, "PUT", "/runs/other", encodeRun(t, other, nil), nil); rec.Code != 200 {
		t.Fatalf("seeding other: %d", rec.Code)
	}
	if rec := do(t, s, "PUT", "/runs/hot", docA, nil); rec.Code != 200 {
		t.Fatalf("seeding hot: %d", rec.Code)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			doc := docA
			if i%2 == 1 {
				doc = docB
			}
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest("PUT", "/runs/hot", strings.NewReader(doc)))
			if rec.Code != 200 {
				t.Errorf("overwriting PUT: %d %s", rec.Code, rec.Body.String())
				return
			}
		}
	}()
	for i := 0; i < 150 && !t.Failed(); i++ {
		// Touch "other" first: with capacity 1 this evicts "hot", so the
		// next query is a cold load racing the overwrite in flight.
		if rec := do(t, s, "GET", "/runs?run=other", "", nil); rec.Code != 200 {
			t.Fatalf("iteration %d: other: %d %s", i, rec.Code, rec.Body.String())
		}
		var detail struct {
			Vertices int `json:"vertices"`
		}
		rec := do(t, s, "GET", "/runs?run=hot", "", &detail)
		if rec.Code != 200 {
			t.Fatalf("iteration %d: torn session surfaced: %d %s", i, rec.Code, rec.Body.String())
		}
		if !sizes[detail.Vertices] {
			t.Fatalf("iteration %d: session has %d vertices, matching neither written run", i, detail.Vertices)
		}
	}
	close(done)
	wg.Wait()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
