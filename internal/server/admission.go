package server

import (
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// admission is the server's overload-protection layer. Every request
// (except /healthz, which must stay observable under load) passes
// through two gates before reaching a handler:
//
//  1. A per-client token bucket: each client — keyed by the X-Client-ID
//     header when present, else the remote address's host — refills at
//     a configured rate and pays one token per request. An empty bucket
//     is 429 with Retry-After set to when the next token arrives.
//  2. A bounded concurrency gate: at most maxInflight requests execute
//     at once; up to queueDepth more wait for a slot (respecting the
//     client's context, so an abandoned request never occupies a queue
//     position); beyond that the request is 429 with Retry-After.
//
// The gate is what turns a cold-cache stampede or an ingest burst into
// queued-then-shed load instead of unbounded goroutines each holding a
// session load or a labeling in flight: memory stays proportional to
// maxInflight + queueDepth, never to the arrival rate.
type admission struct {
	slots      chan struct{} // buffered; one token per inflight slot
	queueDepth int64

	queued        atomic.Int64
	inflight      atomic.Int64
	peakInflight  atomic.Int64
	admitted      atomic.Int64
	rejectedQueue atomic.Int64
	rejectedRate  atomic.Int64

	rate  float64 // tokens per second per client; <= 0 disables
	burst float64 // bucket capacity

	mu      sync.Mutex
	buckets map[string]*bucket // guarded by mu
	now     func() time.Time   // injectable clock for tests; set once, read-only after
}

// bucket is one client's token bucket; guarded by admission.mu (client
// counts are bounded, contention is negligible next to request work).
type bucket struct {
	tokens float64
	last   time.Time
}

// maxClients bounds the bucket map. When full, stale buckets (refilled
// to capacity, so indistinguishable from fresh ones) are swept; if every
// bucket is active the new client is admitted unthrottled this round
// rather than growing the map — bounded memory beats perfect fairness
// during a client-count flood.
const maxClients = 4096

func newAdmission(maxInflight, queueDepth int, rate, burst float64) *admission {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	if burst <= 0 {
		burst = 2 * rate
	}
	if burst < 1 {
		// A bucket that can never hold one whole token would reject
		// every request forever; one token is the smallest usable burst.
		burst = 1
	}
	return &admission{
		slots:      make(chan struct{}, maxInflight),
		queueDepth: int64(queueDepth),
		rate:       rate,
		burst:      burst,
		buckets:    make(map[string]*bucket),
		now:        time.Now,
	}
}

// admit applies both gates. On success it returns a release function the
// caller must invoke when the request finishes. On overload it writes
// the 429 (with Retry-After) itself and returns ok=false.
func (a *admission) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	client := clientKey(r)
	if retry, limited := a.takeToken(client); limited {
		a.rejectedRate.Add(1)
		writeRetryAfter(w, retry)
		writeErr(w, http.StatusTooManyRequests,
			"rate limit exceeded for this client; retry in %s", retry)
		return nil, false
	}
	select {
	case a.slots <- struct{}{}:
	default:
		// No free slot: join the bounded queue or shed. A shed (or
		// abandoned) request did no work, so its rate-limit token is
		// refunded — otherwise a client obeying Retry-After after a
		// capacity 429 would eat a second, rate 429 for a request that
		// never executed.
		if q := a.queued.Add(1); q > a.queueDepth {
			a.queued.Add(-1)
			a.rejectedQueue.Add(1)
			a.refundToken(client)
			retry := time.Second
			writeRetryAfter(w, retry)
			writeErr(w, http.StatusTooManyRequests,
				"server is at capacity (%d in flight, %d queued); retry in %s",
				cap(a.slots), a.queueDepth, retry)
			return nil, false
		}
		select {
		case a.slots <- struct{}{}:
			a.queued.Add(-1)
		case <-r.Context().Done():
			// The client gave up while queued; nothing useful to write.
			a.queued.Add(-1)
			a.refundToken(client)
			return nil, false
		}
	}
	a.admitted.Add(1)
	in := a.inflight.Add(1)
	for {
		peak := a.peakInflight.Load()
		if in <= peak || a.peakInflight.CompareAndSwap(peak, in) {
			break
		}
	}
	return func() {
		a.inflight.Add(-1)
		<-a.slots
	}, true
}

// takeToken charges one token to the client's bucket, reporting how long
// the client should wait when the bucket is empty.
func (a *admission) takeToken(client string) (retryAfter time.Duration, limited bool) {
	if a.rate <= 0 {
		return 0, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	b, ok := a.buckets[client]
	if !ok {
		if len(a.buckets) >= maxClients {
			a.sweepLocked(now)
		}
		if len(a.buckets) >= maxClients {
			return 0, false // map full of active clients; see maxClients
		}
		b = &bucket{tokens: a.burst, last: now}
		a.buckets[client] = b
	}
	b.tokens = math.Min(a.burst, b.tokens+now.Sub(b.last).Seconds()*a.rate)
	b.last = now
	if b.tokens < 1 {
		return time.Duration((1 - b.tokens) / a.rate * float64(time.Second)), true
	}
	b.tokens--
	return 0, false
}

// refundToken returns the token charged to a request that was shed or
// abandoned before doing any work.
func (a *admission) refundToken(client string) {
	if a.rate <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if b, ok := a.buckets[client]; ok {
		b.tokens = math.Min(a.burst, b.tokens+1)
	}
}

// sweepLocked drops buckets that have refilled to capacity: a client
// whose bucket is full has been idle long enough that forgetting it
// changes nothing. The caller holds a.mu.
func (a *admission) sweepLocked(now time.Time) {
	for client, b := range a.buckets {
		if math.Min(a.burst, b.tokens+now.Sub(b.last).Seconds()*a.rate) >= a.burst {
			delete(a.buckets, client)
		}
	}
}

// clientKey identifies the requesting client for rate limiting: an
// explicit X-Client-ID when the caller sends one (load balancers and
// SDKs), else the connection's remote host.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// writeRetryAfter sets Retry-After in whole seconds, rounded up so the
// client never retries before the server is ready.
func writeRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// AdmissionStats is a snapshot of the admission layer's counters,
// reported under "admission" in /healthz.
type AdmissionStats struct {
	// MaxInflight and QueueDepth echo the configured bounds.
	MaxInflight int `json:"max_inflight"`
	QueueDepth  int `json:"queue_depth"`
	// Inflight and Queued are the current gauges; PeakInflight is the
	// high-water mark (never exceeds MaxInflight).
	Inflight     int64 `json:"inflight"`
	Queued       int64 `json:"queued"`
	PeakInflight int64 `json:"peak_inflight"`
	// Admitted counts requests that passed both gates; RejectedQueue and
	// RejectedRate count 429s from the full queue and empty buckets.
	Admitted      int64 `json:"admitted"`
	RejectedQueue int64 `json:"rejected_queue"`
	RejectedRate  int64 `json:"rejected_rate"`
	// RateLimitedClients is the resident token-bucket count.
	RateLimitedClients int `json:"rate_limited_clients,omitempty"`
}

func (a *admission) Stats() AdmissionStats {
	a.mu.Lock()
	clients := len(a.buckets)
	a.mu.Unlock()
	return AdmissionStats{
		MaxInflight:        cap(a.slots),
		QueueDepth:         int(a.queueDepth),
		Inflight:           a.inflight.Load(),
		Queued:             a.queued.Load(),
		PeakInflight:       a.peakInflight.Load(),
		Admitted:           a.admitted.Load(),
		RejectedQueue:      a.rejectedQueue.Load(),
		RejectedRate:       a.rejectedRate.Load(),
		RateLimitedClients: clients,
	}
}
