package server

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// sessionCache is an LRU cache of opened store sessions with
// singleflight-style load deduplication: when N requests arrive
// concurrently for a run that is not cached, exactly one performs the
// disk load while the others block on the in-flight entry and share its
// result. Cache hits never touch disk — the session (run graph, labels,
// data view, namer) lives entirely in memory.
type sessionCache struct {
	loadFn func(name string) (*session, error)

	mu      sync.Mutex
	max     int
	entries map[string]*list.Element // guarded by mu; run name -> element holding *cacheEntry
	order   *list.List               // guarded by mu; front = most recently used

	// gens, guarded by mu, fences in-flight loads against invalidation: every Invalidate
	// or Put bumps the generation for the name (striped by hash — a
	// collision only costs a spurious re-load, never staleness), and a
	// load that started under an older generation must not land in the
	// cache when it completes. Entry registration before the load plus
	// Invalidate's detach already make resurrection impossible today;
	// the generation check turns that emergent property into a checked
	// invariant (counted in Stats().Fenced), so the write path's
	// delete/overwrite coherence no longer depends on the exact order of
	// map surgery in this file.
	gens [256]uint64

	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
	fenced        atomic.Int64
}

// cacheEntry is one cached (or in-flight) session load. ready is closed
// once sess/err are set; waiters block on it without holding the cache
// lock, so a slow disk load never serializes hits on other runs.
type cacheEntry struct {
	name  string
	gen   uint64 // generation observed when the load was registered
	ready chan struct{}
	sess  *session
	err   error
}

// genIndex stripes names over the generation table with the package's
// shared FNV-1a (see fnv32a in ingest.go).
func genIndex(name string) int {
	return int(fnv32a(name) % 256)
}

func newSessionCache(max int, load func(string) (*session, error)) *sessionCache {
	if max < 1 {
		max = 1
	}
	return &sessionCache{
		loadFn:  load,
		max:     max,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// Get returns the session for the named run, loading it at most once no
// matter how many goroutines ask concurrently. Failed loads are not
// cached: the next Get retries the disk.
func (c *sessionCache) Get(name string) (*session, error) {
	c.mu.Lock()
	if el, ok := c.entries[name]; ok {
		c.order.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		c.hits.Add(1)
		<-e.ready
		return e.sess, e.err
	}
	c.misses.Add(1)
	e := &cacheEntry{name: name, gen: c.gens[genIndex(name)], ready: make(chan struct{})}
	el := c.order.PushFront(e)
	c.entries[name] = el
	c.mu.Unlock()

	sess, err := c.loadFn(name)
	e.sess, e.err = sess, err
	close(e.ready)

	// Eviction runs only after the load resolves: a failed load (e.g. a
	// request for a run that doesn't exist) removes itself and never
	// evicts a live session, so bogus run names can't thrash the cache.
	// The cache may transiently exceed max by the number of in-flight
	// loads; max >= 1 keeps a just-loaded entry at the front safe.
	c.mu.Lock()
	switch {
	case c.gens[genIndex(name)] != e.gen:
		// The name was invalidated (or replaced by Put) while this load
		// was in flight: whatever it read predates that write or delete
		// and must not stay cached. Waiters still get this result — their
		// requests overlapped the invalidating operation — but the entry
		// is dropped so the next Get reloads current state.
		if cur, ok := c.entries[name]; ok && cur == el {
			c.order.Remove(el)
			delete(c.entries, name)
		}
		c.fenced.Add(1)
	case err != nil:
		// Drop the failed entry unless it was already evicted or replaced.
		if cur, ok := c.entries[name]; ok && cur == el {
			c.order.Remove(el)
			delete(c.entries, name)
		}
	default:
		c.evictOverCapacityLocked()
	}
	c.mu.Unlock()
	return sess, err
}

// Peek returns the cached session for name without ever loading: a
// miss is just (nil, false). It is degraded mode's read path — while
// the circuit breaker is open, resident sessions (immutable, fully in
// memory) keep answering queries and misses are shed instead of sent to
// a backend known to be failing. A hit still refreshes LRU position and
// counts as a hit; an entry still loading is waited on like Get (its
// load began before the breaker opened), and a failed load reports a
// miss.
func (c *sessionCache) Peek(name string) (*session, bool) {
	c.mu.Lock()
	el, ok := c.entries[name]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.order.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	c.mu.Unlock()
	c.hits.Add(1)
	<-e.ready
	if e.err != nil || e.sess == nil {
		return nil, false
	}
	return e.sess, true
}

// evictOverCapacityLocked drops least-recently-used entries until the
// cache is back within max; the caller holds c.mu.
func (c *sessionCache) evictOverCapacityLocked() {
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).name)
		c.evictions.Add(1)
	}
}

// Invalidate drops the named entry so the next Get reloads from the
// backend, and bumps the name's generation so a load already in flight
// cannot land its (stale) result in the cache when it completes. It is
// the write path's cache-coherence hook: after an ingest overwrites a
// stored run — or a delete removes it — the stale session must not keep
// answering. An in-flight load for the name is detached and fenced
// rather than interrupted — its waiters still receive the session they
// asked for (their requests overlapped the write), but the result is
// never cached. Reports whether an entry was dropped.
func (c *sessionCache) Invalidate(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[genIndex(name)]++
	el, ok := c.entries[name]
	if !ok {
		return false
	}
	c.order.Remove(el)
	delete(c.entries, name)
	c.invalidations.Add(1)
	return true
}

// Put installs an already-resolved session at the front of the LRU,
// replacing any entry (cached or in-flight) for the name. It is the
// ingest path's refresh: the session was just built from the labeling
// in hand, so going back to the backend for it would be pure waste.
// Like Invalidate, it bumps the generation: a load that was in flight
// across the Put is older than the session just installed and must not
// replace it.
func (c *sessionCache) Put(name string, sess *session) {
	e := &cacheEntry{name: name, ready: make(chan struct{}), sess: sess}
	close(e.ready)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[genIndex(name)]++
	e.gen = c.gens[genIndex(name)]
	if el, ok := c.entries[name]; ok {
		c.order.Remove(el)
	}
	c.entries[name] = c.order.PushFront(e)
	c.evictOverCapacityLocked()
}

// Names returns the cached run names, most recently used first.
// In-flight loads count: a session being loaded right now is by
// definition hot. The slice is the warm-restart hot list.
func (c *sessionCache) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		names = append(names, el.Value.(*cacheEntry).name)
	}
	return names
}

// Len returns the number of cached (or in-flight) sessions.
func (c *sessionCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// CacheStats is a snapshot of the session cache's counters.
type CacheStats struct {
	Cached        int   `json:"cached"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	// Fenced counts loads whose result was discarded because the name
	// was invalidated (overwritten or deleted) while the load was in
	// flight — each one is a stale session the generation fence kept out
	// of the cache.
	Fenced int64 `json:"fenced"`
}

func (c *sessionCache) Stats() CacheStats {
	return CacheStats{
		Cached:        c.Len(),
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Fenced:        c.fenced.Load(),
	}
}
