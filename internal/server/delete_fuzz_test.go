package server

import (
	"math/rand"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/store"
)

// FuzzDeleteRun throws hostile run names at the deletion path: whatever
// the name, DELETE /runs/{name} must answer 200 (really deleted), 404
// (no such run or unroutable path) or 400 (invalid name) — never 5xx,
// never a panic — and a read-only server must answer 403 before looking
// at the name at all. A 200 must really mean deleted: the run must be
// unknown to the query path afterwards. The FuzzIngestRun of the exit
// path.
func FuzzDeleteRun(f *testing.F) {
	f.Add("r1")
	f.Add("seeded")
	f.Add("absent")
	f.Add("..")
	f.Add("../../etc/passwd")
	f.Add(".hot")
	f.Add(".")
	f.Add("")
	f.Add("a/b")
	f.Add("a b")
	f.Add(strings.Repeat("x", 4096))
	f.Add("run\x00name")
	f.Add("run%2Fname")
	f.Add("ünïcode")

	sp := spec.PaperSpec()
	st, err := store.NewMem(sp, "paper")
	if err != nil {
		f.Fatal(err)
	}
	s, err := New(Config{Store: st, EnableIngest: true})
	if err != nil {
		f.Fatal(err)
	}
	ro, err := New(Config{Store: st})
	if err != nil {
		f.Fatal(err)
	}
	// One stored run the fuzzer may legitimately delete ("seeded" is a
	// corpus entry), re-seeded whenever an input lands its 200.
	seed, _ := run.GenerateSized(sp, rand.New(rand.NewSource(13)), 50)
	doc := encodeRun(f, seed, nil)
	reseed := func(tb testing.TB) {
		tb.Helper()
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("PUT", "/runs/seeded", strings.NewReader(doc)))
		if rec.Code != 200 {
			tb.Fatalf("re-seeding: %d %s", rec.Code, rec.Body.String())
		}
	}
	reseed(f)

	f.Fuzz(func(t *testing.T, name string) {
		target := "/runs/" + url.PathEscape(name)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("DELETE", target, nil))
		switch {
		case rec.Code >= 500:
			t.Fatalf("DELETE %q answered %d: %s", name, rec.Code, rec.Body.String())
		case rec.Code == 200:
			// Deleted for real: the query path must agree, then restore
			// the store for the next input.
			qr := httptest.NewRecorder()
			s.ServeHTTP(qr, httptest.NewRequest("GET", "/runs?run="+url.QueryEscape(name), nil))
			if qr.Code != 404 {
				t.Fatalf("DELETE %q answered 200 but the run still serves: %d", name, qr.Code)
			}
			if name == "seeded" {
				reseed(t)
			}
		}
		// The read-only server refuses every deletion identically.
		rr := httptest.NewRecorder()
		ro.ServeHTTP(rr, httptest.NewRequest("DELETE", target, nil))
		if rr.Code != 403 && rr.Code != 404 && rr.Code != 301 {
			// 404 only for paths the mux cannot route to the handler at
			// all (an empty name segment), 301 for paths it redirects to
			// their cleaned form ("." / ".." segments); anything that
			// reaches the handler must be the flat 403.
			t.Fatalf("read-only DELETE %q = %d, want 403 (or unroutable 404/301)", name, rr.Code)
		}
	})
}
