package server

import (
	"bytes"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/provdata"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/xmlio"
)

// FuzzIngestRun throws hostile bodies at the write path: whatever the
// bytes, PUT /runs/{name} must answer 200 (stored), 4xx (rejected) or
// 413 (too large) — never 5xx, never a panic, and never unbounded
// allocation (the body cap is set low so the fuzzer can cross it). A
// 200 must really mean stored: the run must be listed and queryable
// afterwards. This mirrors the PR-3 hostile-snapshot-header hardening,
// one layer up the stack.
func FuzzIngestRun(f *testing.F) {
	sp := spec.PaperSpec()
	// Seeds from the xmlio corpus: a real generated run (with data
	// items), the paper's Figure 3 run, and structurally hostile
	// variants — truncation, huge ids, wrong root, entity tricks.
	rng := rand.New(rand.NewSource(42))
	r, _ := run.GenerateSized(sp, rng, 90)
	ann := provdata.RandomItems(r, rng, 1.0, 0.3)
	var genDoc bytes.Buffer
	if err := xmlio.EncodeRun(&genDoc, r, ann, "paper"); err != nil {
		f.Fatal(err)
	}
	fig3, _ := run.Figure3Run(sp)
	var figDoc bytes.Buffer
	if err := xmlio.EncodeRun(&figDoc, fig3, nil, "paper"); err != nil {
		f.Fatal(err)
	}
	f.Add(genDoc.String())
	f.Add(figDoc.String())
	f.Add(genDoc.String()[:genDoc.Len()/2])
	f.Add(`<run><vertices><vertex id="0" module="a"/></vertices><edges/></run>`)
	f.Add(`<run><vertices><vertex id="4294967295" module="a"/></vertices><edges/></run>`)
	f.Add(`<run><vertices><vertex id="0" module="a"/></vertices><edges><edge from="0" to="999999999"/></edges></run>`)
	f.Add(`<workflow>not a run</workflow>`)
	f.Add(`<run>` + strings.Repeat(`<vertices>`, 200))
	f.Add(`<?xml version="1.0"?><!DOCTYPE run [<!ENTITY a "aaaa">]><run>&a;</run>`)
	f.Add("")

	st, err := store.NewMem(sp, "paper")
	if err != nil {
		f.Fatal(err)
	}
	s, err := New(Config{Store: st, EnableIngest: true, MaxIngestBytes: 1 << 18})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, body string) {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("PUT", "/runs/fz", strings.NewReader(body)))
		switch {
		case rec.Code >= 500:
			t.Fatalf("ingest answered %d for a client-supplied body: %s", rec.Code, rec.Body.String())
		case rec.Code == 200:
			// An accepted run must actually serve.
			qr := httptest.NewRecorder()
			s.ServeHTTP(qr, httptest.NewRequest("GET", "/runs?run=fz", nil))
			if qr.Code != 200 {
				t.Fatalf("ingest accepted a run that does not serve: %d %s", qr.Code, qr.Body.String())
			}
		}
	})
}
