package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"repro/internal/dag"
	"repro/internal/live"
	"repro/internal/rpq"
	"repro/internal/spec"
)

// maxRPQBody bounds a /rpq request body; rpq.MaxPatternLen bounds the
// pattern inside it, so this only needs headroom for the envelope.
const maxRPQBody = rpq.MaxPatternLen + 4096

// rpqRequest is the POST /rpq body.
type rpqRequest struct {
	Run     string `json:"run"`
	From    string `json:"from"`
	To      string `json:"to"`
	Pattern string `json:"pattern"`
}

// handleRPQ answers POST /rpq: does some path from 'from' to 'to' in
// the run spell a word matching 'pattern' (a regular expression over
// module labels — see internal/rpq)? Like /reachable it is admission-
// gated, answers live streaming sessions transparently, and keeps
// serving resident runs in degraded mode. Bad patterns — syntax errors
// and patterns whose determinization would exceed the DFA state
// budget — are client errors (400), never engine failures.
func (s *Server) handleRPQ(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxRPQBody)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeErr(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	var req rpqRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "malformed request body: %v", err)
		return
	}
	if req.From == "" || req.To == "" {
		writeErr(w, http.StatusBadRequest, "missing 'from' or 'to' field")
		return
	}
	if req.Pattern == "" {
		writeErr(w, http.StatusBadRequest, "missing 'pattern' field (use \"()\" for the empty word)")
		return
	}
	// Compile before resolving the run: a bad pattern answers 400
	// without touching any session, and no run lock is held while the
	// pattern is parsed.
	sp := s.st.Spec()
	prog, err := rpq.Compile(req.Pattern, func(name string) (dag.VertexID, bool) {
		return sp.VertexOf(spec.ModuleName(name))
	})
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad pattern: %v", err)
		return
	}
	ls, release, sess, ok := s.resolveRun(w, req.Run)
	if !ok {
		return
	}
	if ls != nil {
		defer release()
	}
	var u, v dag.VertexID
	var okU, okV bool
	if ls != nil {
		u, okU = ls.Vertex(req.From)
		v, okV = ls.Vertex(req.To)
	} else {
		u, okU = sess.vertex(req.From)
		v, okV = sess.vertex(req.To)
	}
	if !okU || !okV {
		bad := req.From
		if okU {
			bad = req.To
		}
		writeErr(w, http.StatusNotFound, "unknown vertex %q", bad)
		return
	}
	m := rpq.NewMatcher(prog, s.rpqMaxStates)
	var match bool
	if ls != nil {
		// A live session has labels but no materialized edges; rebuild
		// the run graph from the streamed execution tree (vertex IDs
		// match the live numbering, so the online labels prune it).
		rr, rerr := ls.MaterializedRun()
		if rerr != nil {
			var inc *live.IncompleteError
			if errors.As(rerr, &inc) {
				writeErr(w, http.StatusConflict,
					"cannot answer a path query on run %q yet: %v", req.Run, inc.Err)
				return
			}
			writeErr(w, http.StatusInternalServerError,
				"materializing live run %q: %v", req.Run, rerr)
			return
		}
		match, err = m.Eval(rr.Graph, rr.Origin, ls.Reachable, u, v)
	} else {
		match, err = m.Eval(sess.Run.Graph, sess.Run.Origin, sess.Labels.Reachable, u, v)
	}
	if err != nil {
		if errors.Is(err, rpq.ErrStateBudget) {
			writeErr(w, http.StatusBadRequest, "bad pattern: %v", err)
			return
		}
		writeErr(w, http.StatusInternalServerError, "evaluating path query: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"run":     req.Run,
		"from":    req.From,
		"to":      req.To,
		"pattern": req.Pattern,
		"match":   match,
	})
}
