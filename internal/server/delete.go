package server

import (
	"errors"
	"io/fs"
	"net/http"
	"sort"

	"repro/internal/store"
)

// delete.go is the run lifecycle's exit path: DELETE /runs/{name}
// removes a stored run and its label snapshot, and the retention sweep
// (Config.MaxRuns / provserve -max-runs) applies the same primitive
// automatically so a long-lived ingesting server stops accumulating
// runs forever. Deletion shares the write path's gate: it is enabled by
// Config.EnableIngest and coordinates with loads and ingests on the
// same striped per-run-name locks — a DELETE holds the write side
// across the backend delete and the cache invalidation, so a concurrent
// cache-miss load can never observe the run half-gone or resurrect a
// session for it (the delete-side twin of the ingest torn-session
// guarantee), and the cache's generation fence keeps any load already
// in flight from landing its pre-delete result in the cache.

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.ingest && !s.stream {
		writeErr(w, http.StatusForbidden,
			"deletion is disabled on this server (start it with ingest or streaming enabled to accept DELETE /runs)")
		return
	}
	name := r.PathValue("name")
	if err := store.ValidRunName(name); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.brk.isOpen() {
		s.unavailable(w, "degraded mode: the storage backend is unavailable, deletion is disabled")
		return
	}
	switch err := s.deleteRun(name); {
	case errors.Is(err, fs.ErrNotExist):
		s.brk.note(nil)
		writeErr(w, http.StatusNotFound, "unknown run %q", name)
	case err != nil:
		s.brk.note(err)
		if store.IsTransient(err) {
			// Transient deletes are side-effect-free by contract: nothing
			// was removed, so the client may retry the DELETE verbatim.
			s.unavailable(w, "deleting run %q: %v", name, err)
			return
		}
		writeErr(w, http.StatusInternalServerError, "deleting run %q: %v", name, err)
	default:
		s.brk.note(nil)
		s.logf("server: deleted run %q", name)
		writeJSON(w, http.StatusOK, map[string]any{"run": name, "deleted": true})
	}
}

// deleteRun removes the stored run and drops its cached session under
// the run's write lock, so no cache-miss load can interleave: a load
// either completes before the backend delete (and is then invalidated
// and generation-fenced) or starts after it (and reports the run
// missing). The cache is invalidated unconditionally — on ErrNotExist
// a session cached before some external process removed the blobs is a
// zombie, and on any other error the backend may have deleted the pair
// partway (fs removes the document first; shard stops mid-children), so
// a cached session could otherwise keep answering for a run that is
// already gone from the store.
// On a streaming server the delete also aborts any live session and
// clears the run's durable stream state: a run being streamed but never
// finished has no stored blobs, so DeleteRun reports ErrNotExist — that
// is still a successful delete when stream state existed.
func (s *Server) deleteRun(name string) error {
	mu := s.runMu.forName(name)
	mu.Lock()
	defer mu.Unlock()
	hadStream := false
	if s.stream {
		hadStream = s.clearStreamState(name)
	}
	err := s.st.DeleteRun(name)
	s.cache.Invalidate(name)
	if hadStream && errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

// deleteIdleRun is the retention sweep's delete: it re-checks the
// in-flight-ingest set under the run's write lock and refuses (ok
// false, nil error) when a PUT for the name is executing. The sweep's
// up-front snapshot of that set goes stale the moment it is taken — a
// client could overwrite a chosen victim and be acknowledged while the
// sweep works through its list — but a PUT registers in s.ingesting
// before it takes the stripe lock, so any ingest not visible to this
// check strictly follows the delete and re-creates the run. An explicit
// DELETE request deliberately skips this check: last-writer-wins is the
// contract between clients racing a name; only the *automatic* sweep
// must never cancel an acknowledged write.
func (s *Server) deleteIdleRun(name string) (bool, error) {
	mu := s.runMu.forName(name)
	mu.Lock()
	defer mu.Unlock()
	s.ingestingMu.Lock()
	busy := s.ingesting[name] > 0
	s.ingestingMu.Unlock()
	if busy {
		return false, nil
	}
	if s.stream {
		// Clear any leftover stream state too, so a retention-deleted run
		// cannot be resurrected as a zombie live session from a stale log.
		s.clearStreamState(name)
	}
	err := s.st.DeleteRun(name)
	s.cache.Invalidate(name)
	return err == nil, err
}

// EnforceMaxRuns deletes stored runs until at most max remain. Two
// classes are never victims: the explicitly named runs, and any run
// with an ingest in flight (a PUT acknowledged between this sweep's
// listing and its deletes must not be the sweep's victim). Everything
// else is ordered by value — cache membership is query-driven, so
// cached means hot: cold (never-queried) runs go first, by ascending
// name for deterministic sweeps, and only when those run out are
// cached sessions deleted too, least-recently-used first — the hot
// list order, so retention and warm restarts agree about which runs
// matter. A bound below the hot working set therefore does evict hot
// runs. Returns the deleted names. The ingest path calls this after
// every successful PUT when Config.MaxRuns is set; it is exported so
// deployments can run retention on their own schedule too.
//
// A run whose PUT has completed but that nobody has queried is fair
// game the moment its handler returns: at the bound, ingest-then-query
// clients should query promptly (making the run hot) or size MaxRuns
// above their working set.
func (s *Server) EnforceMaxRuns(max int, protect ...string) ([]string, error) {
	if max < 1 {
		return nil, nil
	}
	names, err := s.st.Runs()
	if err != nil {
		return nil, err
	}
	excess := len(names) - max
	if excess <= 0 {
		return nil, nil
	}
	stored := make(map[string]bool, len(names))
	for _, n := range names {
		stored[n] = true
	}
	keep := make(map[string]bool, len(protect))
	for _, n := range protect {
		keep[n] = true
	}
	s.ingestingMu.Lock()
	for n := range s.ingesting {
		keep[n] = true
	}
	s.ingestingMu.Unlock()
	hot := s.cache.Names() // MRU first
	hotRank := make(map[string]int, len(hot))
	for i, n := range hot {
		hotRank[n] = i
	}
	var victims []string
	for _, n := range names { // ListRuns is sorted: cold victims in name order
		if !keep[n] {
			if _, isHot := hotRank[n]; !isHot {
				victims = append(victims, n)
			}
		}
	}
	for i := len(hot) - 1; i >= 0; i-- { // then cached runs, LRU first
		if n := hot[i]; stored[n] && !keep[n] {
			victims = append(victims, n)
		}
	}
	var deleted []string
	for _, n := range victims {
		if excess <= 0 {
			break
		}
		ok, err := s.deleteIdleRun(n)
		switch {
		case err == nil && ok:
			deleted = append(deleted, n)
			excess--
		case err == nil:
			// An ingest for this name began after the victims were
			// chosen: the run is being (re)written right now and is no
			// longer a victim. The store stays one over for this round;
			// the next sweep re-evaluates.
		case errors.Is(err, fs.ErrNotExist):
			// Concurrently deleted: the store shrank without us.
			excess--
		default:
			return deleted, err
		}
	}
	if len(deleted) > 0 {
		sort.Strings(deleted)
		s.logf("server: retention sweep deleted %d run(s): %v", len(deleted), deleted)
	}
	return deleted, nil
}
