package server

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/label"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/store/faultinject"
)

// newFaultServer builds a server over a fault-wrapped in-memory store
// holding runs "alpha" and "beta", with a fast-probing breaker. The
// returned fault backend starts with no plan (pure pass-through);
// tests flip faults on with SetPlan.
func newFaultServer(t *testing.T, cfg Config) (*Server, *faultinject.Backend, *store.Store) {
	t.Helper()
	fb := faultinject.Wrap(store.NewMemBackend(), faultinject.Plan{})
	st, err := store.New(fb, spec.PaperSpec(), "paper")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	rng := rand.New(rand.NewSource(11))
	for _, name := range []string{"alpha", "beta"} {
		r, _ := run.GenerateSized(spec.PaperSpec(), rng, 100)
		if err := st.PutRun(name, r, nil, label.TCM{}); err != nil {
			t.Fatalf("PutRun(%s): %v", name, err)
		}
	}
	cfg.Store = st
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 2
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = 20 * time.Millisecond
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, fb, st
}

// healthz decodes /healthz far enough for breaker assertions.
type healthzBody struct {
	Status   string       `json:"status"`
	Degraded bool         `json:"degraded"`
	Breaker  BreakerStats `json:"breaker"`
	Expired  int64        `json:"streams_expired"`
}

func getHealthz(t *testing.T, s *Server) healthzBody {
	t.Helper()
	var h healthzBody
	if rec := do(t, s, "GET", "/healthz", "", &h); rec.Code != 200 {
		t.Fatalf("GET /healthz: %d %s", rec.Code, rec.Body.String())
	}
	return h
}

// waitClosed polls /healthz until the breaker closes (the probe loop
// healed it) or the deadline passes.
func waitClosed(t *testing.T, s *Server) healthzBody {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		h := getHealthz(t, s)
		if !h.Degraded {
			return h
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker still open at deadline: %+v", h)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// resumeRun continues a stream from event index from, like a client
// resuming after an outage: offsets pick up at the live sequence
// instead of zero, so nothing already acknowledged is re-applied.
func resumeRun(t *testing.T, s *Server, name string, evs []events.Event, from, batch int) {
	t.Helper()
	seq := from
	for start := from; start < len(evs); start += batch {
		end := start + batch
		if end > len(evs) {
			end = len(evs)
		}
		var resp struct {
			Seq int `json:"seq"`
		}
		target := fmt.Sprintf("/runs/%s/events?offset=%d", name, seq)
		if rec := do(t, s, "POST", target, logText(t, evs[start:end]), &resp); rec.Code != 200 {
			t.Fatalf("POST %s: %d %s", target, rec.Code, rec.Body.String())
		}
		seq = resp.Seq
	}
	if seq != len(evs) {
		t.Fatalf("resumed stream %q ends at %d, want %d", name, seq, len(evs))
	}
}

// TestBreakerLifecycle drives the breaker through its whole arc: closed
// under faults below threshold, open after consecutive transient
// failures, degraded mode semantics while open (cache-hit reads serve,
// everything else sheds 503 + Retry-After), and automatic close once
// the probe loop finds the backend healthy again.
func TestBreakerLifecycle(t *testing.T) {
	s, fb, _ := newFaultServer(t, Config{EnableIngest: true})

	// Make alpha resident, leave beta cold.
	if rec := do(t, s, "GET", "/reachable?run=alpha&from=0&to=1", "", nil); rec.Code != 200 {
		t.Fatalf("warm alpha: %d %s", rec.Code, rec.Body.String())
	}
	if h := getHealthz(t, s); h.Degraded || h.Breaker.State != "closed" {
		t.Fatalf("healthy server reports %+v", h)
	}

	// Backend down: every op fails transiently.
	fb.SetPlan(faultinject.Plan{Default: faultinject.Rule{ErrRate: 1}})

	// Cold reads hit the backend, fail transiently, and strike the
	// breaker; at threshold 2 the second one opens it. Both answer 503.
	for i := 0; i < 2; i++ {
		rec := do(t, s, "GET", "/reachable?run=beta&from=0&to=1", "", nil)
		if rec.Code != 503 {
			t.Fatalf("cold read %d under faults: %d %s", i, rec.Code, rec.Body.String())
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatalf("cold read %d: missing Retry-After", i)
		}
	}
	h := getHealthz(t, s)
	if !h.Degraded || h.Breaker.State != "open" || h.Breaker.Opens != 1 {
		t.Fatalf("after %d transient failures: %+v", 2, h)
	}
	if h.Breaker.RetryAfterSeconds < 1 {
		t.Fatalf("open breaker advertises Retry-After %d", h.Breaker.RetryAfterSeconds)
	}

	// Degraded mode: the resident run answers at full fidelity without
	// touching the (down) backend...
	for _, target := range []string{
		"/reachable?run=alpha&from=0&to=1",
		"/lineage?run=alpha&vertex=3&dir=up",
		"/runs/alpha",
	} {
		if rec := do(t, s, "GET", target, "", nil); rec.Code != 200 {
			t.Fatalf("degraded cache-hit GET %s: %d %s", target, rec.Code, rec.Body.String())
		}
	}
	// ...while cache misses and writes shed with 503 + Retry-After.
	shed := []struct{ method, target, body string }{
		{"GET", "/reachable?run=beta&from=0&to=1", ""},
		{"GET", "/runs", ""},
		{"PUT", "/runs/gamma", "not-even-parsed"},
		{"DELETE", "/runs/alpha", ""},
	}
	for _, c := range shed {
		rec := do(t, s, c.method, c.target, c.body, nil)
		if rec.Code != 503 {
			t.Fatalf("degraded %s %s: %d %s", c.method, c.target, rec.Code, rec.Body.String())
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatalf("degraded %s %s: missing Retry-After", c.method, c.target)
		}
	}

	// Heal the backend; the probe loop must close the breaker on its own
	// (client traffic is shed while open, so only the probe can heal it).
	fb.SetPlan(faultinject.Plan{})
	h = waitClosed(t, s)
	if h.Breaker.Probes < 1 {
		t.Fatalf("breaker closed without probing: %+v", h)
	}
	if rec := do(t, s, "GET", "/reachable?run=beta&from=0&to=1", "", nil); rec.Code != 200 {
		t.Fatalf("read after heal: %d %s", rec.Code, rec.Body.String())
	}
	if rec := do(t, s, "DELETE", "/runs/beta", "", nil); rec.Code != 200 {
		t.Fatalf("delete after heal: %d %s", rec.Code, rec.Body.String())
	}
}

// TestBreakerDisabled checks that a negative threshold turns the whole
// subsystem off: unbounded transient failures never open the breaker
// and /healthz reports it disabled.
func TestBreakerDisabled(t *testing.T) {
	s, fb, _ := newFaultServer(t, Config{BreakerThreshold: -1})
	fb.SetPlan(faultinject.Plan{Default: faultinject.Rule{ErrRate: 1}})
	for i := 0; i < 10; i++ {
		if rec := do(t, s, "GET", "/reachable?run=beta&from=0&to=1", "", nil); rec.Code != 503 {
			t.Fatalf("read %d under faults: %d", i, rec.Code)
		}
	}
	h := getHealthz(t, s)
	if h.Degraded || h.Breaker.Enabled || h.Breaker.State != "disabled" {
		t.Fatalf("disabled breaker reports %+v", h)
	}
}

// TestDegradedLiveSession checks the streaming half of degraded mode: a
// live session keeps answering queries while the breaker is open (its
// state is in memory), appends are shed, and after the heal the client
// resumes at the same offset with nothing lost.
func TestDegradedLiveSession(t *testing.T) {
	sp := spec.PaperSpec()
	r, p := run.GenerateSized(sp, rand.New(rand.NewSource(23)), 80)
	evs := events.Emit(r, p)

	fb := faultinject.Wrap(store.NewMemBackend(), faultinject.Plan{})
	st, err := store.New(fb, sp, "paper")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	s, err := New(Config{
		Store: st, EnableStream: true,
		BreakerThreshold: 2, BreakerCooldown: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	half := len(evs) / 2
	seq := streamRun(t, s, "r", evs[:half], 16)

	// Backend down: appends strike the breaker (the transient contract
	// says nothing landed, so the session stays appendable) and open it.
	fb.SetPlan(faultinject.Plan{Default: faultinject.Rule{ErrRate: 1}})
	for i := 0; i < 2; i++ {
		target := fmt.Sprintf("/runs/r/events?offset=%d", seq)
		rec := do(t, s, "POST", target, logText(t, evs[half:half+1]), nil)
		if rec.Code != 503 {
			t.Fatalf("append %d under faults: %d %s", i, rec.Code, rec.Body.String())
		}
	}
	if h := getHealthz(t, s); !h.Degraded {
		t.Fatalf("breaker not open after failed appends: %+v", h)
	}

	// The live session still answers queries at its pre-fault sequence.
	var status struct {
		Status string `json:"status"`
		Events int    `json:"events"`
	}
	if rec := do(t, s, "GET", "/runs/r", "", &status); rec.Code != 200 {
		t.Fatalf("live status while degraded: %d %s", rec.Code, rec.Body.String())
	}
	if status.Status != "live" || status.Events != seq {
		t.Fatalf("live status while degraded: %+v, want live at %d", status, seq)
	}
	if rec := do(t, s, "GET", "/reachable?run=r&from=0&to=1", "", nil); rec.Code != 200 {
		t.Fatalf("live query while degraded: %d %s", rec.Code, rec.Body.String())
	}

	// Heal, wait for the probe to close the breaker, and finish the
	// stream from exactly where it stopped: zero acknowledged events
	// were lost to the outage.
	fb.SetPlan(faultinject.Plan{})
	waitClosed(t, s)
	resumeRun(t, s, "r", evs, seq, 16)
	if rec := do(t, s, "POST", "/runs/r/finish", "", nil); rec.Code != 200 {
		t.Fatalf("finish after heal: %d %s", rec.Code, rec.Body.String())
	}
}

// TestRecoverStreams checks eager startup recovery: a restarted server
// rebuilds interrupted live sessions from their durable stream state
// before taking traffic, and cleans stale stream state for runs whose
// finish stored the run but crashed before removing the log.
func TestRecoverStreams(t *testing.T) {
	sp := spec.PaperSpec()
	st, err := store.NewMem(sp, "paper")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })

	r1, p1 := run.GenerateSized(sp, rand.New(rand.NewSource(31)), 90)
	evs1 := events.Emit(r1, p1)
	r2, p2 := run.GenerateSized(sp, rand.New(rand.NewSource(32)), 60)
	evs2 := events.Emit(r2, p2)

	s1, err := New(Config{Store: st, EnableStream: true, CheckpointEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	half := len(evs1) * 2 / 3
	seq1 := streamRun(t, s1, "r1", evs1[:half], 16)
	streamRun(t, s1, "r2", evs2, 16)
	// Simulate a crash in finish's window: the run document is stored
	// but the event log was never cleaned up.
	if err := st.PutRun("r2", r2, nil, label.TCM{}); err != nil {
		t.Fatal(err)
	}
	// s1 "crashes" here: its registry is simply abandoned.

	s2, err := New(Config{Store: st, EnableStream: true})
	if err != nil {
		t.Fatal(err)
	}
	recovered, cleaned, err := s2.RecoverStreams()
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 1 || cleaned != 1 {
		t.Fatalf("RecoverStreams = (%d recovered, %d cleaned), want (1, 1)", recovered, cleaned)
	}
	// r1 is live in memory before any request touches it.
	if s2.live.Get("r1") == nil {
		t.Fatal("r1 not registered after eager recovery")
	}
	var status struct {
		Status string `json:"status"`
		Events int    `json:"events"`
	}
	if rec := do(t, s2, "GET", "/runs/r1", "", &status); rec.Code != 200 {
		t.Fatalf("GET /runs/r1: %d %s", rec.Code, rec.Body.String())
	}
	if status.Status != "live" || status.Events != seq1 {
		t.Fatalf("recovered r1 status %+v, want live at %d", status, seq1)
	}
	// r2's stale stream state is gone and the stored run answers.
	if _, err := st.ReadRunEvents("r2"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("r2 event log after cleanup: err=%v, want ErrNotExist", err)
	}
	if rec := do(t, s2, "GET", "/runs/r2", "", &status); rec.Code != 200 || status.Status != "finished" {
		t.Fatalf("GET /runs/r2: %d %+v", rec.Code, status)
	}
	// The recovered session continues exactly where the crash left it.
	resumeRun(t, s2, "r1", evs1, seq1, 16)
	if rec := do(t, s2, "POST", "/runs/r1/finish", "", nil); rec.Code != 200 {
		t.Fatalf("finish recovered r1: %d %s", rec.Code, rec.Body.String())
	}

	// A server without streaming is a no-op.
	s3, err := New(Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if rec, cl, err := s3.RecoverStreams(); rec != 0 || cl != 0 || err != nil {
		t.Fatalf("RecoverStreams on non-streaming server: (%d, %d, %v)", rec, cl, err)
	}
}

// TestSweepIdleStreams checks the idle-TTL sweep: sessions younger than
// the TTL survive, idle ones are expired with their durable state, the
// counter reaches /healthz, and the name is free for a fresh stream.
func TestSweepIdleStreams(t *testing.T) {
	sp := spec.PaperSpec()
	r, p := run.GenerateSized(sp, rand.New(rand.NewSource(37)), 70)
	evs := events.Emit(r, p)
	s, st := newStreamServer(t, Config{})
	streamRun(t, s, "idle", evs[:len(evs)/2], 16)

	if expired := s.SweepIdleStreams(time.Hour); len(expired) != 0 {
		t.Fatalf("hour-TTL sweep expired %v", expired)
	}
	time.Sleep(2 * time.Millisecond)
	expired := s.SweepIdleStreams(time.Millisecond)
	if len(expired) != 1 || expired[0] != "idle" {
		t.Fatalf("sweep expired %v, want [idle]", expired)
	}
	if s.live.Get("idle") != nil {
		t.Fatal("expired session still registered")
	}
	if _, err := st.ReadRunEvents("idle"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("expired event log: err=%v, want ErrNotExist", err)
	}
	if h := getHealthz(t, s); h.Expired != 1 {
		t.Fatalf("healthz streams_expired = %d, want 1", h.Expired)
	}
	if rec := do(t, s, "GET", "/runs/idle", "", nil); rec.Code != 404 {
		t.Fatalf("GET expired run: %d, want 404", rec.Code)
	}
	// The name is reusable: a fresh stream starts at sequence zero and
	// runs to completion.
	streamRun(t, s, "idle", evs, 16)
	if rec := do(t, s, "POST", "/runs/idle/finish", "", nil); rec.Code != 200 {
		t.Fatalf("finish reused name: %d %s", rec.Code, rec.Body.String())
	}
	// TTL zero disables the sweep entirely.
	if expired := s.SweepIdleStreams(0); expired != nil {
		t.Fatalf("zero-TTL sweep expired %v", expired)
	}
}
