package server

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/events"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/store"
)

// newStreamServer builds a streaming-enabled server over a fresh
// in-memory store with the paper spec.
func newStreamServer(t *testing.T, cfg Config) (*Server, *store.Store) {
	t.Helper()
	st, err := store.NewMem(spec.PaperSpec(), "paper")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	cfg.Store = st
	cfg.EnableStream = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, st
}

// logText renders events in the wire format POST /runs/{name}/events
// accepts.
func logText(t testing.TB, evs []events.Event) string {
	t.Helper()
	var buf bytes.Buffer
	if err := events.WriteLog(&buf, evs); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// streamRun appends evs to name in batches of batch events, tracking
// the offset cursor like a real client, and returns the final sequence.
func streamRun(t *testing.T, s *Server, name string, evs []events.Event, batch int) int {
	t.Helper()
	seq := 0
	for start := 0; start < len(evs); start += batch {
		end := start + batch
		if end > len(evs) {
			end = len(evs)
		}
		var resp struct {
			Applied int `json:"applied"`
			Seq     int `json:"seq"`
		}
		target := fmt.Sprintf("/runs/%s/events?offset=%d", name, seq)
		if rec := do(t, s, "POST", target, logText(t, evs[start:end]), &resp); rec.Code != 200 {
			t.Fatalf("POST %s: %d %s", target, rec.Code, rec.Body.String())
		}
		if resp.Applied != end-start || resp.Seq != end {
			t.Fatalf("batch [%d:%d): applied %d seq %d", start, end, resp.Applied, resp.Seq)
		}
		seq = resp.Seq
	}
	return seq
}

// TestStreamDifferential is the subsystem's acceptance check: a run
// ingested event-by-event and finished must answer /reachable, /batch
// and /lineage byte-identically to the same run ingested as one
// document — and identically to its own live session before the finish.
func TestStreamDifferential(t *testing.T) {
	sp := spec.PaperSpec()
	r, p := run.GenerateSized(sp, rand.New(rand.NewSource(41)), 120)
	evs := events.Emit(r, p)

	streamed, _ := newStreamServer(t, Config{CheckpointEvery: 32})
	direct, _ := newIngestServer(t, Config{})
	if rec := do(t, direct, "PUT", "/runs/r", encodeRun(t, r, nil), nil); rec.Code != 200 {
		t.Fatalf("direct PUT: %d %s", rec.Code, rec.Body.String())
	}

	streamRun(t, streamed, "r", evs, 7)

	// Collect the differential query set: every endpoint the subsystem
	// must answer identically, over a spread of vertices.
	n := r.NumVertices()
	var targets []string
	for u := 0; u < n; u += 7 {
		for v := 0; v < n; v += 5 {
			targets = append(targets, fmt.Sprintf("/reachable?run=r&from=%d&to=%d", u, v))
		}
	}
	for v := 0; v < n; v += 9 {
		targets = append(targets, fmt.Sprintf("/lineage?run=r&vertex=%d&dir=up", v))
		targets = append(targets, fmt.Sprintf("/lineage?run=r&vertex=%d&dir=down", v))
	}
	var pairs bytes.Buffer
	pairs.WriteString(`{"run":"r","pairs":[`)
	for i := 0; i < n-1; i++ {
		if i > 0 {
			pairs.WriteByte(',')
		}
		fmt.Fprintf(&pairs, "[%d,%d]", i, i+1)
	}
	pairs.WriteString("]}")

	query := func(s *Server, target string) string {
		method, body := "GET", ""
		if target == "/batch" {
			method, body = "POST", pairs.String()
		}
		rec := do(t, s, method, target, body, nil)
		if rec.Code != 200 {
			t.Fatalf("%s %s: %d %s", method, target, rec.Code, rec.Body.String())
		}
		return rec.Body.String()
	}
	targets = append(targets, "/batch")

	live := make(map[string]string, len(targets))
	for _, tg := range targets {
		live[tg] = query(streamed, tg)
	}

	var fin struct {
		Vertices int `json:"vertices"`
		Events   int `json:"events"`
	}
	if rec := do(t, streamed, "POST", "/runs/r/finish", "", &fin); rec.Code != 200 {
		t.Fatalf("finish: %d %s", rec.Code, rec.Body.String())
	}
	if fin.Vertices != n || fin.Events != len(evs) {
		t.Fatalf("finish = %+v, want %d vertices, %d events", fin, n, len(evs))
	}

	for _, tg := range targets {
		sealed := query(streamed, tg)
		if sealed != live[tg] {
			t.Errorf("%s: live answer %q != finished answer %q", tg, live[tg], sealed)
		}
		if dir := query(direct, tg); sealed != dir {
			t.Errorf("%s: streamed answer %q != direct-PUT answer %q", tg, sealed, dir)
		}
	}

	// The sealed run's status flips from live to finished.
	var detail struct {
		Status   string `json:"status"`
		Vertices int    `json:"vertices"`
	}
	do(t, streamed, "GET", "/runs/r", "", &detail)
	if detail.Status != "finished" || detail.Vertices != n {
		t.Fatalf("GET /runs/r after finish = %+v", detail)
	}
}

func TestStreamStatusAndHealth(t *testing.T) {
	s, _ := newStreamServer(t, Config{CheckpointEvery: 4})
	sp := spec.PaperSpec()
	r, p := run.Figure3Run(sp)
	evs := events.Emit(r, p)
	seq := streamRun(t, s, "fig3", evs, 3)

	var detail struct {
		Status        string `json:"status"`
		Vertices      int    `json:"vertices"`
		Events        int    `json:"events"`
		CheckpointSeq int    `json:"checkpoint_seq"`
		LogBytes      int64  `json:"event_log_bytes"`
	}
	if rec := do(t, s, "GET", "/runs/fig3", "", &detail); rec.Code != 200 {
		t.Fatalf("GET /runs/fig3: %d", rec.Code)
	}
	if detail.Status != "live" || detail.Events != seq || detail.Vertices != r.NumVertices() {
		t.Fatalf("live status = %+v (want live, %d events, %d vertices)", detail, seq, r.NumVertices())
	}
	if detail.CheckpointSeq == 0 || detail.LogBytes == 0 {
		t.Fatalf("live status = %+v: expected periodic checkpoint and a durable log", detail)
	}

	// The /runs?run= detail branch answers live runs identically.
	var byQuery struct {
		Status string `json:"status"`
		Events int    `json:"events"`
	}
	do(t, s, "GET", "/runs?run=fig3", "", &byQuery)
	if byQuery.Status != "live" || byQuery.Events != seq {
		t.Fatalf("/runs?run=fig3 = %+v", byQuery)
	}

	var health struct {
		Stream bool `json:"stream"`
		Live   struct {
			Open        int64 `json:"open"`
			Events      int64 `json:"events"`
			Checkpoints int64 `json:"checkpoints"`
		} `json:"live"`
	}
	do(t, s, "GET", "/healthz", "", &health)
	if !health.Stream || health.Live.Open != 1 || health.Live.Events != int64(seq) || health.Live.Checkpoints == 0 {
		t.Fatalf("/healthz live gauges = %+v", health)
	}
}

func TestStreamResume(t *testing.T) {
	s, _ := newStreamServer(t, Config{})
	sp := spec.PaperSpec()
	r, p := run.Figure3Run(sp)
	evs := events.Emit(r, p)
	mid := len(evs) / 2
	streamRun(t, s, "f", evs[:mid], mid)

	// Resending an acknowledged prefix applies nothing (lost response).
	var resp struct {
		Applied int `json:"applied"`
		Seq     int `json:"seq"`
	}
	if rec := do(t, s, "POST", "/runs/f/events?offset=0", logText(t, evs[:mid]), &resp); rec.Code != 200 {
		t.Fatalf("resend: %d %s", rec.Code, rec.Body.String())
	}
	if resp.Applied != 0 || resp.Seq != mid {
		t.Fatalf("resend = %+v, want 0 applied at seq %d", resp, mid)
	}

	// An overlapping batch applies only the surplus.
	if mid < 2 {
		t.Fatal("run too small for overlap test")
	}
	target := fmt.Sprintf("/runs/f/events?offset=%d", mid-2)
	if rec := do(t, s, "POST", target, logText(t, evs[mid-2:mid+1]), &resp); rec.Code != 200 {
		t.Fatalf("overlap: %d %s", rec.Code, rec.Body.String())
	}
	if resp.Applied != 1 || resp.Seq != mid+1 {
		t.Fatalf("overlap = %+v, want 1 applied at seq %d", resp, mid+1)
	}

	// A gap is 409 and reports the sequence to resume from.
	var conflict struct {
		Error string `json:"error"`
		Seq   int    `json:"seq"`
	}
	target = fmt.Sprintf("/runs/f/events?offset=%d", mid+5)
	if rec := do(t, s, "POST", target, logText(t, evs[mid+1:]), &conflict); rec.Code != 409 {
		t.Fatalf("gap: %d %s", rec.Code, rec.Body.String())
	}
	if conflict.Seq != mid+1 || conflict.Error == "" {
		t.Fatalf("gap response = %+v", conflict)
	}

	// A conflicting resend (different events at applied sequences) is 409.
	bad := make([]events.Event, len(evs[:mid]))
	copy(bad, evs[:mid])
	bad[0], bad[1] = bad[1], bad[0]
	if rec := do(t, s, "POST", "/runs/f/events?offset=0", logText(t, bad), &conflict); rec.Code != 409 {
		t.Fatalf("conflict: %d %s", rec.Code, rec.Body.String())
	}

	// Omitting the offset appends at the current sequence.
	if rec := do(t, s, "POST", "/runs/f/events", logText(t, evs[mid+1:]), &resp); rec.Code != 200 {
		t.Fatalf("offsetless append: %d %s", rec.Code, rec.Body.String())
	}
	if resp.Seq != len(evs) {
		t.Fatalf("offsetless append ends at seq %d, want %d", resp.Seq, len(evs))
	}

	// A semantically invalid event is 409 with nothing applied.
	badEv := []events.Event{{Kind: events.ModuleExec, Copy: 999, Module: "a"}}
	if rec := do(t, s, "POST", fmt.Sprintf("/runs/f/events?offset=%d", len(evs)), logText(t, badEv), &conflict); rec.Code != 409 {
		t.Fatalf("invalid event: %d %s", rec.Code, rec.Body.String())
	}

	if rec := do(t, s, "POST", "/runs/f/finish", "", nil); rec.Code != 200 {
		t.Fatalf("finish: %d", rec.Code)
	}
	// Appending to a finished run is 409, as is finishing it again.
	if rec := do(t, s, "POST", "/runs/f/events?offset=0", logText(t, evs[:1]), nil); rec.Code != 409 {
		t.Fatalf("append after finish: %d", rec.Code)
	}
	if rec := do(t, s, "POST", "/runs/f/finish", "", nil); rec.Code != 409 {
		t.Fatalf("double finish: %d", rec.Code)
	}
}

func TestStreamRejections(t *testing.T) {
	// Streaming off: the endpoints refuse outright.
	_, st := newTestStore(t)
	s := newTestServer(t, st, 4, 64)
	if rec := do(t, s, "POST", "/runs/x/events", "exec a copy 0\n", nil); rec.Code != 403 {
		t.Fatalf("events with streaming off: %d", rec.Code)
	}
	if rec := do(t, s, "POST", "/runs/x/finish", "", nil); rec.Code != 403 {
		t.Fatalf("finish with streaming off: %d", rec.Code)
	}

	ss, _ := newStreamServer(t, Config{})
	for name, c := range map[string]struct {
		target, body string
		want         int
	}{
		"bad name":       {"/runs/.hidden/events", "exec a copy 0\n", 400},
		"bad offset":     {"/runs/ok/events?offset=-1", "exec a copy 0\n", 400},
		"garbage offset": {"/runs/ok/events?offset=x", "exec a copy 0\n", 400},
		"garbage body":   {"/runs/ok/events", "not an event log\n", 400},
		"finish nothing": {"/runs/never/finish", "", 404},
		"incomplete":     {"/runs/inc/finish", "", 409},
	} {
		if name == "incomplete" {
			// Seed a stream that cannot materialize yet: a fork copy
			// started with no executions recorded anywhere.
			if rec := do(t, ss, "POST", "/runs/inc/events?offset=0", "copy 1 parent 0 hnode 1\n", nil); rec.Code != 200 {
				t.Fatalf("seeding incomplete stream: %d %s", rec.Code, rec.Body.String())
			}
		}
		if rec := do(t, ss, "POST", c.target, c.body, nil); rec.Code != c.want {
			t.Errorf("%s: POST %s = %d, want %d (%s)", name, c.target, rec.Code, c.want, rec.Body.String())
		}
	}
}

// TestStreamRecovery simulates a crash by building a second server over
// the same store: the registry dies with the first server, and the
// second must resurrect the session from the checkpoint plus the
// event-log tail with no accepted event lost.
func TestStreamRecovery(t *testing.T) {
	st, err := store.NewMem(spec.PaperSpec(), "paper")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s1, err := New(Config{Store: st, EnableStream: true, CheckpointEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	sp := spec.PaperSpec()
	r, p := run.GenerateSized(sp, rand.New(rand.NewSource(42)), 90)
	evs := events.Emit(r, p)
	mid := len(evs) * 2 / 3
	streamRun(t, s1, "crashy", evs[:mid], 5)

	// "Crash": s1 is abandoned; s2 shares only the durable store.
	s2, err := New(Config{Store: st, EnableStream: true, CheckpointEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	var detail struct {
		Status string `json:"status"`
		Events int    `json:"events"`
	}
	if rec := do(t, s2, "GET", "/runs/crashy", "", &detail); rec.Code != 200 {
		t.Fatalf("status after restart: %d %s", rec.Code, rec.Body.String())
	}
	if detail.Status != "live" || detail.Events != mid {
		t.Fatalf("recovered status = %+v, want live at seq %d", detail, mid)
	}
	var health struct {
		Live struct {
			Replays int64 `json:"replays"`
		} `json:"live"`
	}
	do(t, s2, "GET", "/healthz", "", &health)
	if health.Live.Replays != 1 {
		t.Fatalf("replays = %d, want 1", health.Live.Replays)
	}

	// The stream resumes where it left off and finishes normally.
	var resp struct {
		Seq int `json:"seq"`
	}
	if rec := do(t, s2, "POST", fmt.Sprintf("/runs/crashy/events?offset=%d", mid), logText(t, evs[mid:]), &resp); rec.Code != 200 {
		t.Fatalf("append after restart: %d %s", rec.Code, rec.Body.String())
	}
	if resp.Seq != len(evs) {
		t.Fatalf("seq after restart append = %d, want %d", resp.Seq, len(evs))
	}
	var fin struct {
		Vertices int `json:"vertices"`
	}
	if rec := do(t, s2, "POST", "/runs/crashy/finish", "", &fin); rec.Code != 200 {
		t.Fatalf("finish after restart: %d %s", rec.Code, rec.Body.String())
	}
	if fin.Vertices != r.NumVertices() {
		t.Fatalf("recovered run has %d vertices, want %d", fin.Vertices, r.NumVertices())
	}
}

func TestStreamDelete(t *testing.T) {
	s, _ := newStreamServer(t, Config{CheckpointEvery: 2})
	sp := spec.PaperSpec()
	r, p := run.Figure3Run(sp)
	evs := events.Emit(r, p)
	streamRun(t, s, "doomed", evs, 3)

	// DELETE aborts a live-only stream: the run was never stored, but
	// the delete still succeeds and clears every trace.
	var del struct {
		Deleted bool `json:"deleted"`
	}
	if rec := do(t, s, "DELETE", "/runs/doomed", "", &del); rec.Code != 200 || !del.Deleted {
		t.Fatalf("DELETE live run: %d %s", rec.Code, rec.Body.String())
	}
	if rec := do(t, s, "GET", "/runs/doomed", "", nil); rec.Code != 404 {
		t.Fatalf("status after delete: %d, want 404", rec.Code)
	}
	// A new stream under the same name starts from scratch.
	var resp struct {
		Seq int `json:"seq"`
	}
	if rec := do(t, s, "POST", "/runs/doomed/events?offset=0", logText(t, evs[:1]), &resp); rec.Code != 200 {
		t.Fatalf("restream after delete: %d %s", rec.Code, rec.Body.String())
	}
	if resp.Seq != 1 {
		t.Fatalf("restream seq = %d, want 1 (stale state survived the delete)", resp.Seq)
	}
}

// TestStreamStress is the streaming twin of TestIngestNoTornSessions:
// one run takes concurrent event appends, reachability/batch/lineage
// queries, status reads and periodic checkpoints, then a finish races
// the readers. Run under -race this is the subsystem's locking proof.
func TestStreamStress(t *testing.T) {
	s, _ := newStreamServer(t, Config{CheckpointEvery: 16})
	sp := spec.PaperSpec()
	r, p := run.GenerateSized(sp, rand.New(rand.NewSource(43)), 150)
	evs := events.Emit(r, p)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				var rec *httptest.ResponseRecorder
				switch i % 4 {
				case 0:
					u, v := rng.Intn(r.NumVertices()), rng.Intn(r.NumVertices())
					rec = do(t, s, "GET", fmt.Sprintf("/reachable?run=hot&from=%d&to=%d", u, v), "", nil)
				case 1:
					u, v := rng.Intn(r.NumVertices()), rng.Intn(r.NumVertices())
					rec = do(t, s, "POST", "/batch", fmt.Sprintf(`{"run":"hot","pairs":[[%d,%d]]}`, u, v), nil)
				case 2:
					rec = do(t, s, "GET", fmt.Sprintf("/lineage?run=hot&vertex=%d&dir=down", rng.Intn(r.NumVertices())), "", nil)
				default:
					rec = do(t, s, "GET", "/runs/hot", "", nil)
				}
				// Early queries race the first append (404) and vertex
				// references race the stream's growth (404); anything
				// else must succeed.
				if rec.Code != 200 && rec.Code != 404 {
					t.Errorf("query during stream: %d %s", rec.Code, rec.Body.String())
					return
				}
			}
		}(g)
	}

	seq := 0
	for start := 0; start < len(evs) && !t.Failed(); start += 3 {
		end := start + 3
		if end > len(evs) {
			end = len(evs)
		}
		var resp struct {
			Seq int `json:"seq"`
		}
		rec := do(t, s, "POST", fmt.Sprintf("/runs/hot/events?offset=%d", seq), logText(t, evs[start:end]), &resp)
		if rec.Code != 200 {
			t.Fatalf("append [%d:%d): %d %s", start, end, rec.Code, rec.Body.String())
		}
		seq = resp.Seq
	}
	var fin struct {
		Vertices int `json:"vertices"`
	}
	if rec := do(t, s, "POST", "/runs/hot/finish", "", &fin); rec.Code != 200 {
		t.Fatalf("finish under load: %d %s", rec.Code, rec.Body.String())
	}
	close(done)
	wg.Wait()
	if fin.Vertices != r.NumVertices() {
		t.Fatalf("finished with %d vertices, want %d", fin.Vertices, r.NumVertices())
	}
	var detail struct {
		Status string `json:"status"`
	}
	do(t, s, "GET", "/runs/hot", "", &detail)
	if detail.Status != "finished" {
		t.Fatalf("status after stress = %q", detail.Status)
	}
}

// FuzzIngestEvents feeds hostile bodies and offsets to the append
// endpoint: whatever arrives, the server must answer with a client
// error class, never a 5xx or a panic.
func FuzzIngestEvents(f *testing.F) {
	f.Add([]byte("copy 1 parent 0 hnode 1\nexec a copy 1\n"), 0)
	f.Add([]byte("exec a copy 0\nexec b copy 0\n"), 0)
	f.Add([]byte("copy 999999 parent -4 hnode 99\n"), -3)
	f.Add([]byte("# comment\n\nexec nosuch copy 0\n"), 7)
	f.Add([]byte("copy 1 parent 0 hnode 18446744073709551616\n"), 0)
	f.Add(bytes.Repeat([]byte("a"), 9000), 0)
	f.Add([]byte{0, 1, 2, 0xff, 0xfe, '\n', 'e', 'x', 'e', 'c'}, 1)

	st, err := store.NewMem(spec.PaperSpec(), "paper")
	if err != nil {
		f.Fatal(err)
	}
	s, err := New(Config{Store: st, EnableStream: true, CheckpointEvery: 4})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, body []byte, offset int) {
		target := fmt.Sprintf("/runs/fz/events?offset=%d", offset)
		req := httptest.NewRequest("POST", target, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("POST %s with %q: %d %s", target, body, rec.Code, rec.Body.String())
		}
	})
}
