package core_test

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/run"
	"repro/internal/spec"
)

// TestConcurrentQueries hammers one labeling from many goroutines for
// every skeleton scheme. Labelings are read-only at query time (search
// schemes use pooled searchers), so this must be race-free; run with
// `go test -race` to enforce.
func TestConcurrentQueries(t *testing.T) {
	s := spec.PaperSpec()
	r, _ := run.GenerateSized(s, rand.New(rand.NewSource(1)), 600)
	closure, _ := r.Graph.TransitiveClosure()
	n := r.NumVertices()
	for _, scheme := range label.All() {
		scheme := scheme
		t.Run(scheme.Name(), func(t *testing.T) {
			skel, err := scheme.Build(s.Graph)
			if err != nil {
				t.Fatal(err)
			}
			l, err := core.LabelRun(r, skel)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make(chan string, 8)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for q := 0; q < 2000; q++ {
						u := dag.VertexID(rng.Intn(n))
						v := dag.VertexID(rng.Intn(n))
						if l.Reachable(u, v) != closure.Reachable(u, v) {
							select {
							case errs <- "mismatch under concurrency":
							default:
							}
							return
						}
					}
				}(int64(g))
			}
			wg.Wait()
			close(errs)
			for msg := range errs {
				t.Fatal(msg)
			}
		})
	}
}
