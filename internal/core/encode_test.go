package core_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/workload"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := spec.PaperSpec()
	rng := rand.New(rand.NewSource(1))
	r, _ := run.GenerateSized(s, rng, 800)
	skel, _ := label.TCM{}.Build(s.Graph)
	l, err := core.LabelRun(r, skel)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := l.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	snap, err := core.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Labels) != r.NumVertices() {
		t.Fatalf("snapshot has %d labels, want %d", len(snap.Labels), r.NumVertices())
	}
	bound, err := snap.Bind(skel)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 5000; q++ {
		u := dag.VertexID(rng.Intn(r.NumVertices()))
		v := dag.VertexID(rng.Intn(r.NumVertices()))
		if bound.Reachable(u, v) != l.Reachable(u, v) {
			t.Fatalf("bound snapshot disagrees at (%d,%d)", u, v)
		}
	}
	// Compactness: varint encoding should beat 16 bytes/label comfortably.
	if perLabel := float64(buf.Cap()) / float64(r.NumVertices()); perLabel > 12 {
		t.Errorf("snapshot uses %.1f bytes/label; expected < 12", perLabel)
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	s := spec.PaperSpec()
	r, _ := run.MustMaterialize(s, run.SingleExec(s))
	skel, _ := label.BFS{}.Build(s.Graph)
	l, err := core.LabelRun(r, skel)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xff
		if _, err := core.ReadSnapshot(bytes.NewReader(bad)); err == nil {
			t.Error("corrupted magic accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := core.ReadSnapshot(bytes.NewReader(good[:len(good)/2])); err == nil {
			t.Error("truncated snapshot accepted")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := core.ReadSnapshot(bytes.NewReader(nil)); err == nil {
			t.Error("empty snapshot accepted")
		}
	})
	t.Run("nil skeleton", func(t *testing.T) {
		snap, err := core.ReadSnapshot(bytes.NewReader(good))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := snap.Bind(nil); err == nil {
			t.Error("nil skeleton accepted")
		}
	})
}

// Property: snapshots round-trip for arbitrary runs and all answers
// survive serialization.
func TestQuickSnapshotRoundTrip(t *testing.T) {
	s := spec.PaperSpec()
	skel, _ := label.TCM{}.Build(s.Graph)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		et := run.RandomExecSteps(s, rng, rng.Intn(50))
		r, _ := run.MustMaterialize(s, et)
		l, err := core.LabelRun(r, skel)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := l.WriteTo(&buf); err != nil {
			return false
		}
		snap, err := core.ReadSnapshot(&buf)
		if err != nil {
			return false
		}
		bound, err := snap.Bind(skel)
		if err != nil {
			return false
		}
		n := r.NumVertices()
		for q := 0; q < 200; q++ {
			u := dag.VertexID(rng.Intn(n))
			v := dag.VertexID(rng.Intn(n))
			if bound.Reachable(u, v) != l.Reachable(u, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// labeled16k builds the Fig-13-sized benchmark labeling: a QBLAST
// stand-in run of ~16000 vertices.
func labeledQBLAST(t testing.TB, size int) *core.Labeling {
	t.Helper()
	s, err := workload.StandIn("QBLAST", 1)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := run.GenerateSized(s, rand.New(rand.NewSource(int64(size))), size)
	skel, err := label.TCM{}.Build(s.Graph)
	if err != nil {
		t.Fatal(err)
	}
	l, err := core.LabelRun(r, skel)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func encodeVersion(t testing.TB, l *core.Labeling, v core.SnapshotVersion) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := l.WriteToVersion(&buf, v)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteToVersion(%v) reported %d bytes, wrote %d", v, n, buf.Len())
	}
	return buf.Bytes()
}

// TestSnapshotCrossVersion pins the compatibility contract: both wire
// formats decode into the same Snapshot (labels byte-identical), with
// the detected version reported, and each re-encodes losslessly.
func TestSnapshotCrossVersion(t *testing.T) {
	l := labeledQBLAST(t, 2000)
	var want *core.Snapshot
	for _, v := range []core.SnapshotVersion{core.SnapshotV1, core.SnapshotV2} {
		data := encodeVersion(t, l, v)
		snap, err := core.DecodeSnapshot(data)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if snap.Version != v {
			t.Fatalf("decoded version = %v, want %v", snap.Version, v)
		}
		if want == nil {
			want = snap
		} else {
			if !reflect.DeepEqual(snap.Labels, want.Labels) {
				t.Fatalf("%v labels differ from %v labels", v, want.Version)
			}
			if snap.NumPositioned != want.NumPositioned || snap.NumSpec != want.NumSpec {
				t.Fatalf("%v header (%d,%d) != (%d,%d)", v,
					snap.NumPositioned, snap.NumSpec, want.NumPositioned, want.NumSpec)
			}
		}
		// Snapshot.WriteTo round-trips in the same version.
		var buf bytes.Buffer
		if _, err := snap.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("%v re-encode is not byte-identical", v)
		}
		// ReadSnapshot (the io.Reader path) agrees with DecodeSnapshot.
		snap2, err := core.ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(snap2.Labels, snap.Labels) || snap2.Version != snap.Version {
			t.Fatalf("%v: ReadSnapshot disagrees with DecodeSnapshot", v)
		}
	}
}

// TestSnapshotV2Smaller pins the codec's size win: on a Fig-13-sized
// run SKL2 must use at most 60% of SKL1's bytes.
func TestSnapshotV2Smaller(t *testing.T) {
	l := labeledQBLAST(t, 16000)
	v1 := encodeVersion(t, l, core.SnapshotV1)
	v2 := encodeVersion(t, l, core.SnapshotV2)
	ratio := float64(len(v2)) / float64(len(v1))
	t.Logf("n=%d: SKL1=%d bytes, SKL2=%d bytes (%.0f%%)", l.NumVertices(), len(v1), len(v2), 100*ratio)
	if ratio > 0.60 {
		t.Errorf("SKL2 uses %.0f%% of SKL1's bytes; want <= 60%%", 100*ratio)
	}
}

// TestSnapshotHostileCount verifies that a header declaring an enormous
// label count fails fast instead of allocating tens of GiB before any
// label data is read, in both wire formats.
func TestSnapshotHostileCount(t *testing.T) {
	header := func(magic uint32, count uint64) []byte {
		var b []byte
		b = binary.AppendUvarint(b, uint64(magic))
		b = binary.AppendUvarint(b, count)
		b = binary.AppendUvarint(b, 100) // numPositioned
		b = binary.AppendUvarint(b, 10)  // numSpec
		return b
	}
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"v1-max-count", header(0x534b4c31, 1<<32)},
		{"v2-max-count", header(0x534b4c32, 1<<32)},
		{"v1-implausible", header(0x534b4c31, 1<<40)},
		{"v2-implausible", header(0x534b4c32, 1<<40)},
		{"v2-huge-spec", func() []byte {
			var b []byte
			b = binary.AppendUvarint(b, 0x534b4c32)
			b = binary.AppendUvarint(b, 1)
			b = binary.AppendUvarint(b, 100)
			b = binary.AppendUvarint(b, 1<<40)
			return b
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := core.DecodeSnapshot(tc.data); err == nil {
				t.Error("hostile header accepted")
			}
			if _, err := core.ReadSnapshot(bytes.NewReader(tc.data)); err == nil {
				t.Error("hostile header accepted by ReadSnapshot")
			}
		})
	}
}

// TestSnapshotArbitraryValues round-trips hand-built snapshots hitting
// every column encoding: constant columns, tiny deltas, wild jumps that
// force fixed-width, and boundary values.
func TestSnapshotArbitraryValues(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Boundary values chosen to exercise every column width while
	// staying representable on 32-bit platforms (int, dag.VertexID).
	const np = 1<<31 - 1
	const ns = 1<<31 - 1
	cases := [][]core.Label{
		{},
		{{Q1: 0, Q2: 0, Q3: 0, Orig: 0}},
		{{Q1: np, Q2: np, Q3: np, Orig: ns - 1}},
	}
	// One label set per stress pattern, sized to cross block boundaries.
	patterned := make([]core.Label, 10000)
	for i := range patterned {
		switch {
		case i%3 == 0: // slowly climbing (delta-friendly)
			patterned[i] = core.Label{Q1: uint32(i), Q2: uint32(i / 2), Q3: uint32(2 * i), Orig: 5}
		case i%3 == 1: // random wild jumps (fixed-width)
			patterned[i] = core.Label{Q1: rng.Uint32() % np, Q2: rng.Uint32() % np, Q3: rng.Uint32() % np, Orig: dag.VertexID(rng.Intn(ns))}
		default: // constant block
			patterned[i] = core.Label{Q1: 7, Q2: 7, Q3: 7, Orig: 7}
		}
	}
	cases = append(cases, patterned)
	for ci, labels := range cases {
		for _, v := range []core.SnapshotVersion{core.SnapshotV1, core.SnapshotV2} {
			snap := &core.Snapshot{Labels: labels, NumPositioned: np, NumSpec: ns, Version: v}
			var buf bytes.Buffer
			if _, err := snap.WriteTo(&buf); err != nil {
				t.Fatalf("case %d %v: %v", ci, v, err)
			}
			got, err := core.DecodeSnapshot(buf.Bytes())
			if err != nil {
				t.Fatalf("case %d %v: %v", ci, v, err)
			}
			if len(got.Labels) != len(labels) {
				t.Fatalf("case %d %v: %d labels, want %d", ci, v, len(got.Labels), len(labels))
			}
			for i := range labels {
				if got.Labels[i] != labels[i] {
					t.Fatalf("case %d %v: label %d = %+v, want %+v", ci, v, i, got.Labels[i], labels[i])
				}
			}
		}
	}
}

// BenchmarkSnapshotDecode compares decoding both wire formats at the
// Fig-13 run sizes; the SKL2 columnar bulk decoder must beat the SKL1
// streaming-varint path by >= 2x at n=16000 (tracked in BENCH_3.json).
func BenchmarkSnapshotDecode(b *testing.B) {
	for _, size := range []int{4000, 16000} {
		l := labeledQBLAST(b, size)
		for _, v := range []core.SnapshotVersion{core.SnapshotV1, core.SnapshotV2} {
			data := encodeVersion(b, l, v)
			b.Run(fmt.Sprintf("%s/n=%d", v, size), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(int64(len(data)))
				b.ReportMetric(float64(len(data))/float64(l.NumVertices()), "bytes/label")
				for i := 0; i < b.N; i++ {
					if _, err := core.DecodeSnapshot(data); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSnapshotEncode measures WriteTo for both formats.
func BenchmarkSnapshotEncode(b *testing.B) {
	l := labeledQBLAST(b, 16000)
	for _, v := range []core.SnapshotVersion{core.SnapshotV1, core.SnapshotV2} {
		b.Run(v.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := l.WriteToVersion(io.Discard, v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
