package core_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/run"
	"repro/internal/spec"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := spec.PaperSpec()
	rng := rand.New(rand.NewSource(1))
	r, _ := run.GenerateSized(s, rng, 800)
	skel, _ := label.TCM{}.Build(s.Graph)
	l, err := core.LabelRun(r, skel)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := l.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	snap, err := core.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Labels) != r.NumVertices() {
		t.Fatalf("snapshot has %d labels, want %d", len(snap.Labels), r.NumVertices())
	}
	bound, err := snap.Bind(skel)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 5000; q++ {
		u := dag.VertexID(rng.Intn(r.NumVertices()))
		v := dag.VertexID(rng.Intn(r.NumVertices()))
		if bound.Reachable(u, v) != l.Reachable(u, v) {
			t.Fatalf("bound snapshot disagrees at (%d,%d)", u, v)
		}
	}
	// Compactness: varint encoding should beat 16 bytes/label comfortably.
	if perLabel := float64(buf.Cap()) / float64(r.NumVertices()); perLabel > 12 {
		t.Errorf("snapshot uses %.1f bytes/label; expected < 12", perLabel)
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	s := spec.PaperSpec()
	r, _ := run.MustMaterialize(s, run.SingleExec(s))
	skel, _ := label.BFS{}.Build(s.Graph)
	l, err := core.LabelRun(r, skel)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xff
		if _, err := core.ReadSnapshot(bytes.NewReader(bad)); err == nil {
			t.Error("corrupted magic accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := core.ReadSnapshot(bytes.NewReader(good[:len(good)/2])); err == nil {
			t.Error("truncated snapshot accepted")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := core.ReadSnapshot(bytes.NewReader(nil)); err == nil {
			t.Error("empty snapshot accepted")
		}
	})
	t.Run("nil skeleton", func(t *testing.T) {
		snap, err := core.ReadSnapshot(bytes.NewReader(good))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := snap.Bind(nil); err == nil {
			t.Error("nil skeleton accepted")
		}
	})
}

// Property: snapshots round-trip for arbitrary runs and all answers
// survive serialization.
func TestQuickSnapshotRoundTrip(t *testing.T) {
	s := spec.PaperSpec()
	skel, _ := label.TCM{}.Build(s.Graph)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		et := run.RandomExecSteps(s, rng, rng.Intn(50))
		r, _ := run.MustMaterialize(s, et)
		l, err := core.LabelRun(r, skel)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := l.WriteTo(&buf); err != nil {
			return false
		}
		snap, err := core.ReadSnapshot(&buf)
		if err != nil {
			return false
		}
		bound, err := snap.Bind(skel)
		if err != nil {
			return false
		}
		n := r.NumVertices()
		for q := 0; q < 200; q++ {
			u := dag.VertexID(rng.Intn(n))
			v := dag.VertexID(rng.Intn(n))
			if bound.Reachable(u, v) != l.Reachable(u, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
