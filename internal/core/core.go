// Package core implements the paper's primary contribution: the
// skeleton-based reachability labeling scheme (SKL) for workflow runs.
//
// Given a specification labeled by any scheme (the skeleton labels) and a
// run of that specification, SKL assigns each run vertex a label
// (q1, q2, q3, origin): the positions of the vertex's context in the three
// preorder traversals of the execution plan, plus a reference to the
// skeleton label of the vertex's origin. Reachability between two run
// vertices is decided in O(1) from the three order positions when their
// contexts' least common ancestor is an F− or L− node, and by one skeleton
// query otherwise (Algorithm 3).
//
// For a fixed specification the scheme is optimal: labels are
// 3·log n_R + log n_G bits, construction is O(m_R + n_R), and queries run
// in constant time (Theorem 1).
package core

import (
	"fmt"
	"math/bits"

	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/order"
	"repro/internal/plan"
	"repro/internal/run"
)

// Label is the SKL reachability label of one run vertex: the context's
// positions in the three total orders and the origin reference standing
// for the skeleton label (log n_G bits; the skeleton labeling itself is
// shared across all runs of the specification, matching the paper's
// amortized storage model).
type Label struct {
	Q1, Q2, Q3 uint32
	Orig       dag.VertexID
}

// Labeling is a labeled run: it answers reachability queries over run
// vertices in constant time plus at most one skeleton query.
//
// A Labeling is immutable after construction. All query methods
// (Reachable, ReachableLabels, AnsweredByContext, Label, the statistics
// accessors) only read the label slice and delegate to the skeleton
// labeling, whose implementations are likewise safe for concurrent
// queries (see internal/label); any number of goroutines may query one
// Labeling concurrently with no external locking. WriteTo also only
// reads. This is the contract the store sessions and the query server
// build on, enforced by -race tests here and in those packages.
type Labeling struct {
	labels        []Label
	skeleton      label.Labeling
	numPositioned int
	numSpec       int
}

// LabelRun labels a run with the skeleton-based scheme, reconstructing the
// execution plan and context from the run graph (the paper's default
// setting). skeleton must be a labeling of r.Spec.Graph.
func LabelRun(r *run.Run, skeleton label.Labeling) (*Labeling, error) {
	p, err := plan.Construct(r.Spec, r.Graph, r.Origin)
	if err != nil {
		return nil, err
	}
	return LabelRunWithPlan(r, p, skeleton)
}

// LabelRunWithPlan labels a run whose execution plan and context are
// already available (the paper's "with execution plan & context" setting,
// e.g. extracted from a workflow engine's log).
func LabelRunWithPlan(r *run.Run, p *plan.Plan, skeleton label.Labeling) (*Labeling, error) {
	if len(p.Context) != r.NumVertices() {
		return nil, fmt.Errorf("core: plan context covers %d vertices, run has %d",
			len(p.Context), r.NumVertices())
	}
	o := order.Generate(p)
	labels := make([]Label, r.NumVertices())
	for v := range labels {
		x := p.Context[v]
		if x == nil {
			return nil, fmt.Errorf("core: vertex %d has no context", v)
		}
		labels[v] = Label{
			Q1:   o.Pos1[x.ID],
			Q2:   o.Pos2[x.ID],
			Q3:   o.Pos3[x.ID],
			Orig: r.Origin[v],
		}
	}
	return &Labeling{
		labels:        labels,
		skeleton:      skeleton,
		numPositioned: o.NumPositioned,
		numSpec:       r.Spec.NumVertices(),
	}, nil
}

// Label returns the label of run vertex v.
func (l *Labeling) Label(v dag.VertexID) Label { return l.labels[v] }

// NumVertices returns the number of labeled run vertices.
func (l *Labeling) NumVertices() int { return len(l.labels) }

// NumPositioned returns n⁺_T, the number of nonempty + nodes in the
// execution plan (the range of the order positions).
func (l *Labeling) NumPositioned() int { return l.numPositioned }

// Skeleton returns the underlying specification labeling.
func (l *Labeling) Skeleton() label.Labeling { return l.skeleton }

// Reachable reports whether run vertex v is reachable from run vertex u.
func (l *Labeling) Reachable(u, v dag.VertexID) bool {
	return l.ReachableLabels(l.labels[u], l.labels[v])
}

// ReachableLabels is the binary predicate πr of Algorithm 3, evaluated on
// two labels alone.
func (l *Labeling) ReachableLabels(a, b Label) bool {
	d2 := int64(a.Q2) - int64(b.Q2)
	d3 := int64(a.Q3) - int64(b.Q3)
	if d2*d3 < 0 {
		// The contexts' LCA is an F− or L− node; reachable exactly for a
		// forward loop relationship.
		return a.Q1 < b.Q1 && a.Q3 > b.Q3
	}
	return l.skeleton.Reachable(a.Orig, b.Orig)
}

// AnsweredByContext reports whether the query (u, v) is decided by the
// context encoding alone, without consulting the skeleton labels. Used by
// the experiments to explain why query time *drops* as runs grow when the
// skeleton labeling is search-based (Section 8.2).
func (l *Labeling) AnsweredByContext(u, v dag.VertexID) bool {
	a, b := l.labels[u], l.labels[v]
	d2 := int64(a.Q2) - int64(b.Q2)
	d3 := int64(a.Q3) - int64(b.Q3)
	return d2*d3 < 0
}

// MaxLabelBits returns the worst-case label length in bits under
// variable-length integer encoding: 3·⌈log(n⁺_T+1)⌉ for the three order
// positions plus ⌈log n_G⌉ for the skeleton reference (Lemma 4.7).
func (l *Labeling) MaxLabelBits() int {
	return 3*intBits(uint64(l.numPositioned)) + intBits(uint64(l.numSpec-1))
}

// AvgLabelBits returns the mean label length in bits over all run
// vertices, encoding each component with the minimal number of bits for
// its value (the paper's "average length ... measured only for the
// variable-size labels").
func (l *Labeling) AvgLabelBits() float64 {
	if len(l.labels) == 0 {
		return 0
	}
	total := 0
	for _, lab := range l.labels {
		total += intBits(uint64(lab.Q1)) + intBits(uint64(lab.Q2)) + intBits(uint64(lab.Q3)) +
			intBits(uint64(lab.Orig))
	}
	return float64(total) / float64(len(l.labels))
}

// intBits returns the number of bits needed to represent x (at least 1).
func intBits(x uint64) int {
	if x == 0 {
		return 1
	}
	return bits.Len64(x)
}
