package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/plan"
	"repro/internal/run"
	"repro/internal/spec"
)

func mustLabel(t *testing.T, r *run.Run, scheme label.Scheme) *core.Labeling {
	t.Helper()
	skel, err := scheme.Build(r.Spec.Graph)
	if err != nil {
		t.Fatalf("skeleton build: %v", err)
	}
	l, err := core.LabelRun(r, skel)
	if err != nil {
		t.Fatalf("LabelRun: %v", err)
	}
	return l
}

// figure3Run rebuilds the paper's Figure 3 run.
func figure3Run(t *testing.T) *run.Run {
	t.Helper()
	s := spec.PaperSpec()
	et := run.SingleExec(s)
	var f1Site, l2Site *run.ExecTree
	for _, site := range et.Copies[0].Sites {
		if s.KindOf(site.HNode) == spec.Fork {
			f1Site = site
		} else {
			l2Site = site
		}
	}
	run.Duplicate(run.Duplicatable{Site: f1Site, Index: 0})
	run.Duplicate(run.Duplicatable{Site: f1Site.Copies[0].Sites[0], Index: 0})
	run.Duplicate(run.Duplicatable{Site: l2Site, Index: 0})
	run.Duplicate(run.Duplicatable{Site: l2Site.Copies[1].Sites[0], Index: 0})
	r, _ := run.MustMaterialize(s, et)
	return r
}

func vertexByName(t *testing.T, r *run.Run, name string) dag.VertexID {
	t.Helper()
	for v := 0; v < r.NumVertices(); v++ {
		if r.NameOf(dag.VertexID(v)) == name {
			return dag.VertexID(v)
		}
	}
	t.Fatalf("vertex %q not found", name)
	return -1
}

// TestPaperQueries replays the three provenance queries of the
// introduction and the worked examples of Sections 4.2 and 4.4.
func TestPaperQueries(t *testing.T) {
	r := figure3Run(t)
	l := mustLabel(t, r, label.TCM{})
	cases := []struct {
		from, to string
		want     bool
		why      string
	}{
		{"b1", "c3", false, "parallel fork copies (intro query 1)"},
		{"c1", "b2", true, "successive loop iterations (intro query 2)"},
		{"b1", "c1", true, "same copy, reachable in G (intro query 3)"},
		{"c1", "d1", false, "c does not reach d in G (Example 9)"},
		{"f1", "e2", true, "successive L2 iterations (Example 6)"},
		{"e2", "f1", false, "backward across loop iterations"},
		{"f2", "f3", false, "parallel F2 copies"},
		{"a1", "h1", true, "source reaches sink"},
		{"h1", "a1", false, "sink does not reach source"},
		{"b2", "h1", true, "loop body reaches sink"},
		{"d1", "f3", true, "d reaches f in G, same context chain"},
		{"f3", "d1", false, "no backward path"},
	}
	for _, c := range cases {
		u, v := vertexByName(t, r, c.from), vertexByName(t, r, c.to)
		if got := l.Reachable(u, v); got != c.want {
			t.Errorf("Reachable(%s,%s) = %v, want %v (%s)", c.from, c.to, got, c.want, c.why)
		}
	}
	// Query 1 and 2 must be answered by the context encoding alone.
	if !l.AnsweredByContext(vertexByName(t, r, "b1"), vertexByName(t, r, "c3")) {
		t.Error("fork-copy query should be answered by context encoding")
	}
	if !l.AnsweredByContext(vertexByName(t, r, "c1"), vertexByName(t, r, "b2")) {
		t.Error("loop-iteration query should be answered by context encoding")
	}
	// Query 3 needs the skeleton labels.
	if l.AnsweredByContext(vertexByName(t, r, "b1"), vertexByName(t, r, "c1")) {
		t.Error("same-copy query should fall through to skeleton labels")
	}
}

// TestExhaustiveAgainstOracle compares every vertex pair of moderate runs
// against direct graph reachability, for every skeleton scheme.
func TestExhaustiveAgainstOracle(t *testing.T) {
	specs := []*spec.Spec{spec.PaperSpec(), spec.IntroSpec(), spec.LinearSpec(7)}
	rng := rand.New(rand.NewSource(99))
	for _, s := range specs {
		for trial := 0; trial < 4; trial++ {
			et := run.RandomExecSteps(s, rng, 4+rng.Intn(18))
			r, _ := run.MustMaterialize(s, et)
			closure, ok := r.Graph.TransitiveClosure()
			if !ok {
				t.Fatal("run graph cyclic")
			}
			for _, scheme := range label.All() {
				l := mustLabel(t, r, scheme)
				n := r.NumVertices()
				for u := 0; u < n; u++ {
					for v := 0; v < n; v++ {
						got := l.Reachable(dag.VertexID(u), dag.VertexID(v))
						want := closure.Reachable(dag.VertexID(u), dag.VertexID(v))
						if got != want {
							t.Fatalf("scheme %s: Reachable(%s,%s) = %v, want %v",
								scheme.Name(), r.NameOf(dag.VertexID(u)), r.NameOf(dag.VertexID(v)), got, want)
						}
					}
				}
			}
		}
	}
}

// Property: SKL agrees with BFS reachability on random Definition-6 runs
// with randomly chosen skeleton schemes, on sampled pairs.
func TestQuickAgainstOracle(t *testing.T) {
	specs := []*spec.Spec{spec.PaperSpec(), spec.IntroSpec()}
	schemes := label.All()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := specs[rng.Intn(len(specs))]
		et := run.RandomExecSteps(s, rng, rng.Intn(120))
		r, _ := run.MustMaterialize(s, et)
		skel, err := schemes[rng.Intn(len(schemes))].Build(s.Graph)
		if err != nil {
			return false
		}
		l, err := core.LabelRun(r, skel)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		searcher := dag.NewSearcher(r.Graph)
		n := r.NumVertices()
		for q := 0; q < 400; q++ {
			u := dag.VertexID(rng.Intn(n))
			v := dag.VertexID(rng.Intn(n))
			if l.Reachable(u, v) != searcher.ReachableBFS(u, v) {
				t.Logf("seed %d: mismatch at (%s,%s)", seed, r.NameOf(u), r.NameOf(v))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestWithPlanMatchesReconstructed: labeling with the materializer's
// ground-truth plan and labeling from the graph alone give identical
// query answers.
func TestWithPlanMatchesReconstructed(t *testing.T) {
	s := spec.PaperSpec()
	rng := rand.New(rand.NewSource(21))
	et := run.RandomExecSteps(s, rng, 30)
	r, truth := run.MustMaterialize(s, et)
	skel, _ := label.TCM{}.Build(s.Graph)
	fromGraph, err := core.LabelRun(r, skel)
	if err != nil {
		t.Fatal(err)
	}
	fromPlan, err := core.LabelRunWithPlan(r, truth, skel)
	if err != nil {
		t.Fatal(err)
	}
	n := r.NumVertices()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			a := fromGraph.Reachable(dag.VertexID(u), dag.VertexID(v))
			b := fromPlan.Reachable(dag.VertexID(u), dag.VertexID(v))
			if a != b {
				t.Fatalf("plan-given and reconstructed labelings disagree at (%d,%d)", u, v)
			}
		}
	}
}

func TestLabelBitsBounds(t *testing.T) {
	s := spec.PaperSpec()
	rng := rand.New(rand.NewSource(5))
	for _, target := range []int{50, 200, 1000} {
		r, _ := run.GenerateSized(s, rng, target)
		l := mustLabel(t, r, label.TCM{})
		nR := r.NumVertices()
		nG := s.NumVertices()
		// Lemma 4.7: label length <= 3 log nR + log nG.
		bound := 3*bitsFor(nR) + bitsFor(nG)
		if got := l.MaxLabelBits(); got > bound {
			t.Errorf("MaxLabelBits = %d exceeds bound %d (nR=%d)", got, bound, nR)
		}
		if avg := l.AvgLabelBits(); avg <= 0 || avg > float64(l.MaxLabelBits()) {
			t.Errorf("AvgLabelBits = %v out of range (max %d)", avg, l.MaxLabelBits())
		}
		if l.NumPositioned() > nR {
			t.Errorf("n+T = %d exceeds nR = %d", l.NumPositioned(), nR)
		}
	}
}

func bitsFor(n int) int {
	b := 0
	for x := n; x > 0; x >>= 1 {
		b++
	}
	return b
}

func TestLabelAccessors(t *testing.T) {
	r := figure3Run(t)
	skel, _ := label.BFS{}.Build(r.Spec.Graph)
	l, err := core.LabelRun(r, skel)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumVertices() != r.NumVertices() {
		t.Error("NumVertices mismatch")
	}
	if l.Skeleton() != skel {
		t.Error("Skeleton accessor mismatch")
	}
	a1 := vertexByName(t, r, "a1")
	lab := l.Label(a1)
	if lab.Orig != r.Origin[a1] {
		t.Error("Label.Orig mismatch")
	}
	if lab.Q1 == 0 || lab.Q2 == 0 || lab.Q3 == 0 {
		t.Error("a1's context should be positioned (root is nonempty)")
	}
	// ReachableLabels must be usable with detached labels.
	h1 := vertexByName(t, r, "h1")
	if !l.ReachableLabels(l.Label(a1), l.Label(h1)) {
		t.Error("ReachableLabels(a1,h1) should be true")
	}
}

func TestLabelRunWithPlanRejectsMismatchedPlan(t *testing.T) {
	s := spec.PaperSpec()
	r1, _ := run.MustMaterialize(s, run.SingleExec(s))
	et := run.SingleExec(s)
	run.Duplicate(run.Duplicatable{Site: et.Copies[0].Sites[0], Index: 0})
	_, p2 := run.MustMaterialize(s, et)
	skel, _ := label.TCM{}.Build(s.Graph)
	if _, err := core.LabelRunWithPlan(r1, p2, skel); err == nil {
		t.Error("plan for a different run accepted")
	}
}

// TestSkeletonSchemeIrrelevance: all skeleton schemes produce labelings
// with identical answers (the robustness claim of Section 8.2).
func TestSkeletonSchemeIrrelevance(t *testing.T) {
	r := figure3Run(t)
	var labelings []*core.Labeling
	for _, scheme := range label.All() {
		labelings = append(labelings, mustLabel(t, r, scheme))
	}
	n := r.NumVertices()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			want := labelings[0].Reachable(dag.VertexID(u), dag.VertexID(v))
			for _, l := range labelings[1:] {
				if l.Reachable(dag.VertexID(u), dag.VertexID(v)) != want {
					t.Fatalf("schemes disagree at (%d,%d)", u, v)
				}
			}
		}
	}
}

// TestContextOnlyShareGrowsWithRunSize: the share of vertex pairs decided
// without skeleton labels grows with fork/loop replication — the paper's
// explanation for decreasing BFS+SKL query time (Section 8.2).
func TestContextOnlyShareGrowsWithRunSize(t *testing.T) {
	s := spec.PaperSpec()
	rng := rand.New(rand.NewSource(17))
	share := func(target int) float64 {
		r, _ := run.GenerateSized(s, rng, target)
		l := mustLabel(t, r, label.BFS{})
		n := r.NumVertices()
		hits, total := 0, 0
		for q := 0; q < 20000; q++ {
			u := dag.VertexID(rng.Intn(n))
			v := dag.VertexID(rng.Intn(n))
			if u == v {
				continue
			}
			total++
			if l.AnsweredByContext(u, v) {
				hits++
			}
		}
		return float64(hits) / float64(total)
	}
	small := share(20)
	big := share(2000)
	if big <= small {
		t.Errorf("context-only share should grow with run size: small=%.3f big=%.3f", small, big)
	}
	if big < 0.35 {
		t.Errorf("large runs should answer a large share of queries from context alone, got %.3f", big)
	}
}

var sinkBool bool

func BenchmarkLabelRun(b *testing.B) {
	s := spec.PaperSpec()
	r, _ := run.GenerateSized(s, rand.New(rand.NewSource(1)), 10000)
	skel, _ := label.TCM{}.Build(s.Graph)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.LabelRun(r, skel); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryTCMSKL(b *testing.B) {
	s := spec.PaperSpec()
	r, _ := run.GenerateSized(s, rand.New(rand.NewSource(2)), 10000)
	skel, _ := label.TCM{}.Build(s.Graph)
	l, err := core.LabelRun(r, skel)
	if err != nil {
		b.Fatal(err)
	}
	n := r.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := dag.VertexID(i % n)
		v := dag.VertexID((i * 31) % n)
		sinkBool = l.Reachable(u, v)
	}
}

var sinkPlan *plan.Plan

func BenchmarkConstructPlan(b *testing.B) {
	s := spec.PaperSpec()
	r, _ := run.GenerateSized(s, rand.New(rand.NewSource(3)), 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := plan.Construct(s, r.Graph, r.Origin)
		if err != nil {
			b.Fatal(err)
		}
		sinkPlan = p
	}
}
