package core_test

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/label"
	"repro/internal/run"
	"repro/internal/spec"
)

// FuzzReadSnapshot feeds arbitrary bytes to the snapshot decoder:
// snapshots are read from storage backends and could be corrupt or
// hostile, so decoding must never panic and never allocate out of
// proportion to the input (the hostile-count headers below declare
// billions of labels). Anything that does decode must re-encode and
// decode back to the same labels.
func FuzzReadSnapshot(f *testing.F) {
	s := spec.PaperSpec()
	r, _ := run.GenerateSized(s, rand.New(rand.NewSource(11)), 500)
	skel, _ := label.TCM{}.Build(s.Graph)
	l, err := core.LabelRun(r, skel)
	if err != nil {
		f.Fatal(err)
	}
	for _, v := range []core.SnapshotVersion{core.SnapshotV1, core.SnapshotV2} {
		var buf bytes.Buffer
		if _, err := l.WriteToVersion(&buf, v); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2])
	}
	for _, magic := range []uint32{0x534b4c31, 0x534b4c32} {
		var hostile []byte
		hostile = binary.AppendUvarint(hostile, uint64(magic))
		hostile = binary.AppendUvarint(hostile, 1<<32) // count: 64+ GiB if trusted
		hostile = binary.AppendUvarint(hostile, 1000)
		hostile = binary.AppendUvarint(hostile, 1000)
		f.Add(hostile)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := core.DecodeSnapshot(data)
		if err != nil {
			return
		}
		// The streaming reader must agree with the buffer decoder.
		snap2, err := core.ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("DecodeSnapshot accepted what ReadSnapshot rejects: %v", err)
		}
		if len(snap2.Labels) != len(snap.Labels) || snap2.Version != snap.Version {
			t.Fatalf("ReadSnapshot disagrees with DecodeSnapshot")
		}
		// Whatever decodes must round-trip in its own version.
		var buf bytes.Buffer
		if _, err := snap.WriteTo(&buf); err != nil {
			t.Fatalf("re-encode of decoded snapshot: %v", err)
		}
		again, err := core.DecodeSnapshot(buf.Bytes())
		if err != nil {
			t.Fatalf("decode of re-encoded snapshot: %v", err)
		}
		if len(again.Labels) != len(snap.Labels) {
			t.Fatalf("round trip lost labels: %d != %d", len(again.Labels), len(snap.Labels))
		}
		for i := range snap.Labels {
			if again.Labels[i] != snap.Labels[i] {
				t.Fatalf("round trip changed label %d", i)
			}
		}
	})
}
