package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/run"
	"repro/internal/spec"
)

func TestReachableBatchMatchesSequential(t *testing.T) {
	s := spec.PaperSpec()
	rng := rand.New(rand.NewSource(1))
	r, _ := run.GenerateSized(s, rng, 1500)
	for _, scheme := range []label.Scheme{label.TCM{}, label.BFS{}} {
		skel, _ := scheme.Build(s.Graph)
		l, err := core.LabelRun(r, skel)
		if err != nil {
			t.Fatal(err)
		}
		pairs := make([][2]dag.VertexID, 5000)
		for i := range pairs {
			pairs[i] = [2]dag.VertexID{
				dag.VertexID(rng.Intn(r.NumVertices())),
				dag.VertexID(rng.Intn(r.NumVertices())),
			}
		}
		seq := l.ReachableBatch(pairs, 1)
		par := l.ReachableBatch(pairs, 8)
		auto := l.ReachableBatch(pairs, 0)
		for i := range pairs {
			want := l.Reachable(pairs[i][0], pairs[i][1])
			if seq[i] != want || par[i] != want || auto[i] != want {
				t.Fatalf("%s: batch divergence at %d", scheme.Name(), i)
			}
		}
	}
}

func TestReachableBatchSmall(t *testing.T) {
	s := spec.PaperSpec()
	r, _ := run.MustMaterialize(s, run.SingleExec(s))
	skel, _ := label.TCM{}.Build(s.Graph)
	l, _ := core.LabelRun(r, skel)
	if got := l.ReachableBatch(nil, 4); len(got) != 0 {
		t.Error("empty batch should be empty")
	}
	pairs := [][2]dag.VertexID{{0, 1}, {1, 0}}
	got := l.ReachableBatch(pairs, 4)
	if len(got) != 2 {
		t.Fatal("batch size wrong")
	}
}

func BenchmarkReachableBatch(b *testing.B) {
	s := spec.PaperSpec()
	r, _ := run.GenerateSized(s, rand.New(rand.NewSource(2)), 20000)
	skel, _ := label.TCM{}.Build(s.Graph)
	l, _ := core.LabelRun(r, skel)
	rng := rand.New(rand.NewSource(3))
	pairs := make([][2]dag.VertexID, 100_000)
	for i := range pairs {
		pairs[i] = [2]dag.VertexID{
			dag.VertexID(rng.Intn(r.NumVertices())),
			dag.VertexID(rng.Intn(r.NumVertices())),
		}
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l.ReachableBatch(pairs, 1)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l.ReachableBatch(pairs, 0)
		}
	})
}

// TestAppendReachableBatch pins the pooled-buffer variant: results are
// appended after existing elements, the prefix is untouched, and the
// answers match ReachableBatch in both the sequential and parallel
// regimes.
func TestAppendReachableBatch(t *testing.T) {
	s := spec.PaperSpec()
	rng := rand.New(rand.NewSource(31))
	r, _ := run.GenerateSized(s, rng, 3000)
	skel, _ := label.TCM{}.Build(s.Graph)
	l, err := core.LabelRun(r, skel)
	if err != nil {
		t.Fatal(err)
	}
	n := r.NumVertices()
	pairs := make([][2]dag.VertexID, 2000) // crosses the parallel threshold
	for i := range pairs {
		pairs[i] = [2]dag.VertexID{dag.VertexID(rng.Intn(n)), dag.VertexID(rng.Intn(n))}
	}
	want := l.ReachableBatch(pairs, 1)
	for _, par := range []int{1, 0, 8} {
		dst := []bool{true, false}
		got := l.AppendReachableBatch(dst, pairs, par)
		if len(got) != 2+len(pairs) {
			t.Fatalf("par=%d: len = %d, want %d", par, len(got), 2+len(pairs))
		}
		if !got[0] || got[1] {
			t.Fatalf("par=%d: prefix clobbered", par)
		}
		for i := range pairs {
			if got[2+i] != want[i] {
				t.Fatalf("par=%d: pair %d = %v, want %v", par, i, got[2+i], want[i])
			}
		}
	}
	// Appending zero pairs is a no-op.
	if got := l.AppendReachableBatch(nil, nil, 0); len(got) != 0 {
		t.Fatalf("empty append returned %d results", len(got))
	}
}
