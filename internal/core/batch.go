package core

import (
	"runtime"
	"sync"

	"repro/internal/dag"
)

// ReachableBatch answers many reachability queries, fanning out across
// CPUs when the batch is large. Labelings are read-only at query time
// (search-based skeletons use pooled searchers), so parallel evaluation
// is safe. parallelism <= 0 uses GOMAXPROCS.
func (l *Labeling) ReachableBatch(pairs [][2]dag.VertexID, parallelism int) []bool {
	out := make([]bool, len(pairs))
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism == 1 || len(pairs) < 1024 {
		for i, p := range pairs {
			out[i] = l.Reachable(p[0], p[1])
		}
		return out
	}
	chunk := (len(pairs) + parallelism - 1) / parallelism
	var wg sync.WaitGroup
	for start := 0; start < len(pairs); start += chunk {
		end := start + chunk
		if end > len(pairs) {
			end = len(pairs)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = l.Reachable(pairs[i][0], pairs[i][1])
			}
		}(start, end)
	}
	wg.Wait()
	return out
}
