package core

import (
	"runtime"
	"slices"
	"sync"

	"repro/internal/dag"
)

// batchParallelThreshold is the batch size below which fanning out
// across goroutines costs more than it saves; smaller batches are
// always answered sequentially.
const batchParallelThreshold = 1024

// ReachableBatch answers many reachability queries, fanning out across
// CPUs when the batch is large. Labelings are read-only at query time
// (search-based skeletons use pooled searchers), so parallel evaluation
// is safe. parallelism <= 0 uses GOMAXPROCS.
func (l *Labeling) ReachableBatch(pairs [][2]dag.VertexID, parallelism int) []bool {
	return l.AppendReachableBatch(make([]bool, 0, len(pairs)), pairs, parallelism)
}

// AppendReachableBatch appends one answer per pair to dst and returns
// the extended slice; it is ReachableBatch for callers reusing a pooled
// buffer across batches (e.g. the query server's /batch hot path, which
// serves with zero per-request result allocation). parallelism <= 0
// uses GOMAXPROCS; batches below an internal threshold are answered
// sequentially regardless.
func (l *Labeling) AppendReachableBatch(dst []bool, pairs [][2]dag.VertexID, parallelism int) []bool {
	base := len(dst)
	dst = slices.Grow(dst, len(pairs))[:base+len(pairs)]
	out := dst[base:]
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism == 1 || len(pairs) < batchParallelThreshold {
		for i, p := range pairs {
			out[i] = l.Reachable(p[0], p[1])
		}
		return dst
	}
	chunk := (len(pairs) + parallelism - 1) / parallelism
	var wg sync.WaitGroup
	for start := 0; start < len(pairs); start += chunk {
		end := min(start+chunk, len(pairs))
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = l.Reachable(pairs[i][0], pairs[i][1])
			}
		}(start, end)
	}
	wg.Wait()
	return dst
}
