package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/dag"
	"repro/internal/label"
)

// The paper's motivating deployment stores each vertex's reachability
// label next to the data in a database, so labels must serialize
// compactly and queries must run on deserialized labels without the run
// graph. This file provides a varint wire format for label sets and a
// Snapshot that answers queries from stored labels plus the (shared,
// per-specification) skeleton labeling.

const snapshotMagic = uint32(0x534b4c31) // "SKL1"

// WriteTo serializes the labeling's labels (not the skeleton labeling,
// which is shared across runs and persisted once per specification).
func (l *Labeling) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(x uint64) error {
		var buf [binary.MaxVarintLen64]byte
		k := binary.PutUvarint(buf[:], x)
		m, err := bw.Write(buf[:k])
		n += int64(m)
		return err
	}
	if err := write(uint64(snapshotMagic)); err != nil {
		return n, err
	}
	if err := write(uint64(len(l.labels))); err != nil {
		return n, err
	}
	if err := write(uint64(l.numPositioned)); err != nil {
		return n, err
	}
	if err := write(uint64(l.numSpec)); err != nil {
		return n, err
	}
	for _, lab := range l.labels {
		for _, x := range [4]uint64{uint64(lab.Q1), uint64(lab.Q2), uint64(lab.Q3), uint64(lab.Orig)} {
			if err := write(x); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// Snapshot is a deserialized label set: it answers reachability queries
// from stored labels and a skeleton labeling, with no run graph needed.
type Snapshot struct {
	Labels        []Label
	NumPositioned int
	NumSpec       int
}

// ReadSnapshot deserializes a label set written by WriteTo.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	read := func() (uint64, error) { return binary.ReadUvarint(br) }
	magic, err := read()
	if err != nil {
		return nil, fmt.Errorf("core: read snapshot header: %w", err)
	}
	if uint32(magic) != snapshotMagic {
		return nil, fmt.Errorf("core: bad snapshot magic %#x", magic)
	}
	count, err := read()
	if err != nil {
		return nil, err
	}
	if count > 1<<32 {
		return nil, fmt.Errorf("core: implausible label count %d", count)
	}
	np, err := read()
	if err != nil {
		return nil, err
	}
	ns, err := read()
	if err != nil {
		return nil, err
	}
	s := &Snapshot{
		Labels:        make([]Label, count),
		NumPositioned: int(np),
		NumSpec:       int(ns),
	}
	for i := range s.Labels {
		var vals [4]uint64
		for j := range vals {
			v, err := read()
			if err != nil {
				return nil, fmt.Errorf("core: read label %d: %w", i, err)
			}
			vals[j] = v
		}
		if vals[0] > uint64(np) || vals[1] > uint64(np) || vals[2] > uint64(np) {
			return nil, fmt.Errorf("core: label %d position exceeds n+T=%d", i, np)
		}
		if vals[3] >= ns {
			return nil, fmt.Errorf("core: label %d origin %d exceeds spec size %d", i, vals[3], ns)
		}
		s.Labels[i] = Label{
			Q1:   uint32(vals[0]),
			Q2:   uint32(vals[1]),
			Q3:   uint32(vals[2]),
			Orig: dag.VertexID(vals[3]),
		}
	}
	return s, nil
}

// Bind attaches a skeleton labeling to the snapshot, producing a fully
// query-capable Labeling. The skeleton must label the same specification
// the snapshot was created from.
func (s *Snapshot) Bind(skeleton label.Labeling) (*Labeling, error) {
	if skeleton == nil {
		return nil, fmt.Errorf("core: nil skeleton labeling")
	}
	return &Labeling{
		labels:        s.Labels,
		skeleton:      skeleton,
		numPositioned: s.NumPositioned,
		numSpec:       s.NumSpec,
	}, nil
}
