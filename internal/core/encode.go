package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
	"slices"

	"repro/internal/dag"
	"repro/internal/label"
)

// The paper's motivating deployment stores each vertex's reachability
// label next to the data in a database, so labels must serialize
// compactly and queries must run on deserialized labels without the run
// graph. This file provides the snapshot wire formats for label sets and
// a Snapshot that answers queries from stored labels plus the (shared,
// per-specification) skeleton labeling.
//
// # Wire formats
//
// Two versions exist; writers emit SKL2 by default and readers
// auto-detect either from the leading magic, so stores mixing versions
// keep loading transparently.
//
// SKL1 (legacy, row-major): uvarint magic "SKL1", then uvarint count,
// numPositioned, numSpec, then per label the four components
// (Q1, Q2, Q3, Orig) as plain uvarints.
//
// SKL2 (columnar): uvarint magic "SKL2", then uvarint count,
// numPositioned, numSpec, then ceil(count/4096) blocks of up to 4096
// labels. Each block stores its four columns (Q1, Q2, Q3, Orig) in
// order, each column as
//
//	uvarint payloadLen | tag byte | payload (payloadLen bytes)
//
// with the writer picking the cheapest of three encodings per column
// per block: const (every value equal; payload is one uvarint), delta
// (first value as uvarint, then zigzag-uvarint deltas — consecutive
// labels share or neighbor the same context, so deltas are tiny), or
// fixed-width (1/2/4-byte little-endian values). Columns compress
// independently, so a run whose Orig column is constant while its order
// positions climb pays one byte where SKL1 paid thousands, and the
// decoder bulk-reads each column in a single pass over a flat buffer
// instead of one streaming varint read per component.

// SnapshotVersion identifies a snapshot wire format.
type SnapshotVersion int

const (
	// SnapshotV1 is the legacy row-major varint format ("SKL1").
	SnapshotV1 SnapshotVersion = 1
	// SnapshotV2 is the columnar block format ("SKL2"), the default for
	// writers since its introduction.
	SnapshotV2 SnapshotVersion = 2
)

// String returns the on-wire name of the version ("SKL1", "SKL2").
func (v SnapshotVersion) String() string {
	switch v {
	case SnapshotV1:
		return "SKL1"
	case SnapshotV2:
		return "SKL2"
	default:
		return fmt.Sprintf("SKL?%d", int(v))
	}
}

const (
	snapshotMagicV1 = uint32(0x534b4c31) // "SKL1"
	snapshotMagicV2 = uint32(0x534b4c32) // "SKL2"

	// snapshotBlock is the number of labels per SKL2 block: large enough
	// to amortize the 4 column headers, small enough that the decoder's
	// per-block scratch stays cache-resident.
	snapshotBlock = 4096

	// maxSnapshotLabels caps the label count a snapshot header may
	// declare. Headers are attacker-controlled bytes, so the readers
	// also never allocate more than a bounded chunk up front (see
	// readSnapshotV1/decodeSnapshotV2): a hostile count fails at the
	// first missing label, not with a multi-GiB make.
	maxSnapshotLabels = 1 << 32

	// maxSnapshotPositioned bounds numPositioned so order positions fit
	// the uint32 label components.
	maxSnapshotPositioned = 1<<32 - 1

	// maxSnapshotSpec bounds numSpec so origins fit dag.VertexID (int32).
	maxSnapshotSpec = 1 << 31

	// snapshotPreallocLabels bounds the labels the readers allocate
	// before any label data has actually been decoded (1<<16 labels =
	// 1 MiB); beyond it the slice grows only as input is consumed.
	snapshotPreallocLabels = 1 << 16
)

// SKL2 per-block column encodings.
const (
	colConst   = 0x00 // payload: uvarint value, repeated for the block
	colDelta   = 0x01 // payload: uvarint first, then zigzag-uvarint deltas
	colFixed8  = 0x02 // payload: one byte per value
	colFixed16 = 0x03 // payload: two little-endian bytes per value
	colFixed32 = 0x04 // payload: four little-endian bytes per value
)

// WriteTo serializes the labeling's labels (not the skeleton labeling,
// which is shared across runs and persisted once per specification) in
// the current default format, SKL2.
func (l *Labeling) WriteTo(w io.Writer) (int64, error) {
	return l.WriteToVersion(w, SnapshotV2)
}

// WriteToVersion serializes the labeling's labels in an explicit wire
// format version. SnapshotV1 output is byte-identical to what pre-SKL2
// writers produced; ReadSnapshot accepts both.
func (l *Labeling) WriteToVersion(w io.Writer, v SnapshotVersion) (int64, error) {
	s := Snapshot{
		Labels:        l.labels,
		NumPositioned: l.numPositioned,
		NumSpec:       l.numSpec,
		Version:       v,
	}
	return s.WriteTo(w)
}

// Snapshot is a deserialized label set: it answers reachability queries
// from stored labels and a skeleton labeling, with no run graph needed.
type Snapshot struct {
	Labels        []Label
	NumPositioned int
	NumSpec       int
	// Version is the wire format the snapshot was decoded from, or the
	// one WriteTo will encode with; zero means the default (SnapshotV2).
	Version SnapshotVersion
}

// WriteTo re-serializes the snapshot in its Version's wire format
// (SnapshotV2 when Version is zero).
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	var buf []byte
	switch v := s.Version; v {
	case SnapshotV1:
		buf = appendSnapshotV1(nil, s)
	case 0, SnapshotV2:
		buf = appendSnapshotV2(nil, s)
	default:
		return 0, fmt.Errorf("core: unknown snapshot version %d", int(v))
	}
	n, err := w.Write(buf)
	return int64(n), err
}

func appendSnapshotV1(dst []byte, s *Snapshot) []byte {
	dst = binary.AppendUvarint(dst, uint64(snapshotMagicV1))
	dst = binary.AppendUvarint(dst, uint64(len(s.Labels)))
	dst = binary.AppendUvarint(dst, uint64(s.NumPositioned))
	dst = binary.AppendUvarint(dst, uint64(s.NumSpec))
	for _, lab := range s.Labels {
		dst = binary.AppendUvarint(dst, uint64(lab.Q1))
		dst = binary.AppendUvarint(dst, uint64(lab.Q2))
		dst = binary.AppendUvarint(dst, uint64(lab.Q3))
		dst = binary.AppendUvarint(dst, uint64(lab.Orig))
	}
	return dst
}

func appendSnapshotV2(dst []byte, s *Snapshot) []byte {
	dst = binary.AppendUvarint(dst, uint64(snapshotMagicV2))
	dst = binary.AppendUvarint(dst, uint64(len(s.Labels)))
	dst = binary.AppendUvarint(dst, uint64(s.NumPositioned))
	dst = binary.AppendUvarint(dst, uint64(s.NumSpec))
	var col [snapshotBlock]uint32
	for base := 0; base < len(s.Labels); base += snapshotBlock {
		blk := s.Labels[base:min(base+snapshotBlock, len(s.Labels))]
		for c := 0; c < 4; c++ {
			vals := col[:len(blk)]
			switch c {
			case 0:
				for i, lab := range blk {
					vals[i] = lab.Q1
				}
			case 1:
				for i, lab := range blk {
					vals[i] = lab.Q2
				}
			case 2:
				for i, lab := range blk {
					vals[i] = lab.Q3
				}
			case 3:
				for i, lab := range blk {
					vals[i] = uint32(lab.Orig)
				}
			}
			dst = appendColumn(dst, vals)
		}
	}
	return dst
}

// appendColumn encodes one non-empty column block, choosing the
// cheapest of the const, delta and fixed-width encodings.
func appendColumn(dst []byte, vals []uint32) []byte {
	first := vals[0]
	maxv, allEq := first, true
	deltaSize := uvarintSize(uint64(first))
	prev := first
	for _, v := range vals[1:] {
		if v > maxv {
			maxv = v
		}
		if v != first {
			allEq = false
		}
		deltaSize += uvarintSize(zigzag(int64(v) - int64(prev)))
		prev = v
	}
	if allEq {
		n := uvarintSize(uint64(first))
		dst = binary.AppendUvarint(dst, uint64(n))
		dst = append(dst, colConst)
		return binary.AppendUvarint(dst, uint64(first))
	}
	width, tag := 4, byte(colFixed32)
	switch {
	case maxv < 1<<8:
		width, tag = 1, colFixed8
	case maxv < 1<<16:
		width, tag = 2, colFixed16
	}
	if fixedSize := width * len(vals); fixedSize <= deltaSize {
		dst = binary.AppendUvarint(dst, uint64(fixedSize))
		dst = append(dst, tag)
		switch tag {
		case colFixed8:
			for _, v := range vals {
				dst = append(dst, byte(v))
			}
		case colFixed16:
			for _, v := range vals {
				dst = binary.LittleEndian.AppendUint16(dst, uint16(v))
			}
		default:
			for _, v := range vals {
				dst = binary.LittleEndian.AppendUint32(dst, v)
			}
		}
		return dst
	}
	dst = binary.AppendUvarint(dst, uint64(deltaSize))
	dst = append(dst, colDelta)
	dst = binary.AppendUvarint(dst, uint64(first))
	prev = first
	for _, v := range vals[1:] {
		dst = binary.AppendUvarint(dst, zigzag(int64(v)-int64(prev)))
		prev = v
	}
	return dst
}

func uvarintSize(x uint64) int { return (bits.Len64(x|1) + 6) / 7 }

func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// ReadSnapshot deserializes a label set written by WriteTo (either wire
// format, auto-detected from the magic). Input is untrusted: headers
// are validated and allocation stays proportional to the bytes actually
// read, so a corrupt or hostile stream errors out instead of exhausting
// memory.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	magic, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("core: read snapshot header: %w", err)
	}
	switch uint32(magic) {
	case snapshotMagicV1:
		return readSnapshotV1(br)
	case snapshotMagicV2:
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("core: read snapshot body: %w", err)
		}
		return decodeSnapshotV2(data)
	default:
		return nil, fmt.Errorf("core: bad snapshot magic %#x", magic)
	}
}

// DecodeSnapshot deserializes a label set from an in-memory buffer; it
// is ReadSnapshot without the io.Reader indirection and is the fast
// path for stores that already hold the snapshot bytes.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	magic, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("core: read snapshot header: truncated magic")
	}
	if uint32(magic) == snapshotMagicV2 {
		return decodeSnapshotV2(data[k:])
	}
	return ReadSnapshot(bytes.NewReader(data))
}

// readSnapshotHeader validates the three header counts shared by both
// formats.
func readSnapshotHeader(count, np, ns uint64) error {
	if count > maxSnapshotLabels {
		return fmt.Errorf("core: implausible label count %d", count)
	}
	if np > maxSnapshotPositioned {
		return fmt.Errorf("core: implausible position bound %d", np)
	}
	if ns > maxSnapshotSpec {
		return fmt.Errorf("core: implausible spec size %d", ns)
	}
	return nil
}

func readSnapshotV1(br *bufio.Reader) (*Snapshot, error) {
	read := func() (uint64, error) { return binary.ReadUvarint(br) }
	count, err := read()
	if err != nil {
		return nil, err
	}
	np, err := read()
	if err != nil {
		return nil, err
	}
	ns, err := read()
	if err != nil {
		return nil, err
	}
	if err := readSnapshotHeader(count, np, ns); err != nil {
		return nil, err
	}
	s := &Snapshot{
		// The count is attacker-controlled: pre-allocate a bounded chunk
		// and let append grow the slice as label data actually arrives.
		Labels:        make([]Label, 0, min(count, snapshotPreallocLabels)),
		NumPositioned: int(np),
		NumSpec:       int(ns),
		Version:       SnapshotV1,
	}
	for i := uint64(0); i < count; i++ {
		var vals [4]uint64
		for j := range vals {
			v, err := read()
			if err != nil {
				return nil, fmt.Errorf("core: read label %d: %w", i, err)
			}
			vals[j] = v
		}
		if vals[0] > np || vals[1] > np || vals[2] > np {
			return nil, fmt.Errorf("core: label %d position exceeds n+T=%d", i, np)
		}
		if vals[3] >= ns {
			return nil, fmt.Errorf("core: label %d origin %d exceeds spec size %d", i, vals[3], ns)
		}
		s.Labels = append(s.Labels, Label{
			Q1:   uint32(vals[0]),
			Q2:   uint32(vals[1]),
			Q3:   uint32(vals[2]),
			Orig: dag.VertexID(vals[3]),
		})
	}
	return s, nil
}

// decodeSnapshotV2 bulk-decodes the columnar format from the bytes
// following the magic.
func decodeSnapshotV2(data []byte) (*Snapshot, error) {
	var hdr [3]uint64
	for i := range hdr {
		v, k := binary.Uvarint(data)
		if k <= 0 {
			return nil, fmt.Errorf("core: read snapshot header: truncated")
		}
		hdr[i] = v
		data = data[k:]
	}
	count, np, ns := hdr[0], hdr[1], hdr[2]
	if err := readSnapshotHeader(count, np, ns); err != nil {
		return nil, err
	}
	s := &Snapshot{
		Labels:        make([]Label, 0, min(count, snapshotPreallocLabels)),
		NumPositioned: int(np),
		NumSpec:       int(ns),
		Version:       SnapshotV2,
	}
	var q1, q2, q3, og [snapshotBlock]uint32
	for remaining := count; remaining > 0; {
		n := int(min(remaining, snapshotBlock))
		base := len(s.Labels)
		var err error
		for _, col := range [4][]uint32{q1[:n], q2[:n], q3[:n], og[:n]} {
			if data, err = decodeColumn(data, col); err != nil {
				return nil, fmt.Errorf("core: label block at %d: %w", base, err)
			}
		}
		s.Labels = slices.Grow(s.Labels, n)[:base+n]
		blk := s.Labels[base:]
		for i := 0; i < n; i++ {
			if uint64(q1[i]) > np || uint64(q2[i]) > np || uint64(q3[i]) > np {
				return nil, fmt.Errorf("core: label %d position exceeds n+T=%d", base+i, np)
			}
			if uint64(og[i]) >= ns {
				return nil, fmt.Errorf("core: label %d origin %d exceeds spec size %d", base+i, og[i], ns)
			}
			blk[i] = Label{Q1: q1[i], Q2: q2[i], Q3: q3[i], Orig: dag.VertexID(og[i])}
		}
		remaining -= uint64(n)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes after snapshot", len(data))
	}
	return s, nil
}

// decodeColumn decodes one column block into out (len(out) >= 1) and
// returns the remaining input.
func decodeColumn(data []byte, out []uint32) ([]byte, error) {
	plen64, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("truncated column header")
	}
	data = data[k:]
	if len(data) < 1 || plen64 > uint64(len(data)-1) {
		return nil, fmt.Errorf("truncated column")
	}
	tag := data[0]
	payload := data[1 : 1+int(plen64)]
	rest := data[1+int(plen64):]
	switch tag {
	case colConst:
		v, k := binary.Uvarint(payload)
		if k != len(payload) || k <= 0 || v > math.MaxUint32 {
			return nil, fmt.Errorf("bad const column")
		}
		c := uint32(v)
		for i := range out {
			out[i] = c
		}
	case colDelta:
		v0, k := binary.Uvarint(payload)
		if k <= 0 || v0 > math.MaxUint32 {
			return nil, fmt.Errorf("bad delta column start")
		}
		out[0] = uint32(v0)
		prev := int64(v0)
		p := payload[k:]
		for i := 1; i < len(out); i++ {
			var uz uint64
			// Inline the one-byte fast path: deltas are almost always
			// small, and binary.Uvarint's call overhead dominates here.
			if len(p) > 0 && p[0] < 0x80 {
				uz = uint64(p[0])
				p = p[1:]
			} else {
				var k int
				uz, k = binary.Uvarint(p)
				if k <= 0 {
					return nil, fmt.Errorf("truncated delta column")
				}
				p = p[k:]
			}
			v := prev + unzigzag(uz)
			if v < 0 || v > math.MaxUint32 {
				return nil, fmt.Errorf("delta column value out of range")
			}
			out[i] = uint32(v)
			prev = v
		}
		if len(p) != 0 {
			return nil, fmt.Errorf("trailing bytes in delta column")
		}
	case colFixed8:
		if len(payload) != len(out) {
			return nil, fmt.Errorf("fixed8 column holds %d bytes, want %d", len(payload), len(out))
		}
		for i, b := range payload {
			out[i] = uint32(b)
		}
	case colFixed16:
		if len(payload) != 2*len(out) {
			return nil, fmt.Errorf("fixed16 column holds %d bytes, want %d", len(payload), 2*len(out))
		}
		for i := range out {
			out[i] = uint32(binary.LittleEndian.Uint16(payload[2*i:]))
		}
	case colFixed32:
		if len(payload) != 4*len(out) {
			return nil, fmt.Errorf("fixed32 column holds %d bytes, want %d", len(payload), 4*len(out))
		}
		for i := range out {
			out[i] = binary.LittleEndian.Uint32(payload[4*i:])
		}
	default:
		return nil, fmt.Errorf("unknown column tag %#x", tag)
	}
	return rest, nil
}

// Bind attaches a skeleton labeling to the snapshot, producing a fully
// query-capable Labeling. The skeleton must label the same specification
// the snapshot was created from.
func (s *Snapshot) Bind(skeleton label.Labeling) (*Labeling, error) {
	if skeleton == nil {
		return nil, fmt.Errorf("core: nil skeleton labeling")
	}
	return &Labeling{
		labels:        s.Labels,
		skeleton:      skeleton,
		numPositioned: s.NumPositioned,
		numSpec:       s.NumSpec,
	}, nil
}
