package live_test

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"testing"

	"repro/internal/dag"
	"repro/internal/events"
	"repro/internal/label"
	"repro/internal/live"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/store"
)

// newPaperStream returns a mem store for the paper spec plus the
// Figure 3 run's event stream and the run itself.
func newPaperStream(t *testing.T) (*store.Store, label.Labeling, []events.Event, *run.Run) {
	t.Helper()
	s := spec.PaperSpec()
	r, p := run.Figure3Run(s)
	st, err := store.NewMem(s, "paper")
	if err != nil {
		t.Fatal(err)
	}
	skel, err := st.Skeleton(label.TCM{})
	if err != nil {
		t.Fatal(err)
	}
	return st, skel, events.Emit(r, p), r
}

// appendAll streams evs into the session in batches of batch events.
func appendAll(t *testing.T, ls *live.Session, evs []events.Event, batch int) {
	t.Helper()
	for off := 0; off < len(evs); off += batch {
		end := off + batch
		if end > len(evs) {
			end = len(evs)
		}
		n, err := ls.Append(evs[off:end], off)
		if err != nil {
			t.Fatalf("Append(offset=%d): %v", off, err)
		}
		if n != end-off {
			t.Fatalf("Append(offset=%d) applied %d events, want %d", off, n, end-off)
		}
	}
}

func readBlob(t *testing.T, rc io.ReadCloser, err error) []byte {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestFinishMatchesDirectPut pins the tentpole guarantee: a run
// streamed event-by-event and finished produces byte-identical stored
// blobs to the same run ingested directly, and the finish cleans up the
// event log and checkpoint.
func TestFinishMatchesDirectPut(t *testing.T) {
	st, skel, evs, r := newPaperStream(t)
	ls := live.NewSession(st, "streamed", skel, nil)
	appendAll(t, ls, evs, 3)
	if err := ls.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	sess, err := ls.Finish(label.TCM{})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Run.NumVertices() != r.NumVertices() {
		t.Fatalf("finished run has %d vertices, want %d", sess.Run.NumVertices(), r.NumVertices())
	}
	if err := st.PutRun("direct", r, nil, label.TCM{}); err != nil {
		t.Fatal(err)
	}
	for _, blob := range []struct {
		name string
		read func(string) (io.ReadCloser, error)
	}{
		{"run", st.Backend().ReadRun},
		{"labels", st.Backend().ReadLabels},
	} {
		rcA, errA := blob.read("streamed")
		rcB, errB := blob.read("direct")
		a := readBlob(t, rcA, errA)
		b := readBlob(t, rcB, errB)
		if !bytes.Equal(a, b) {
			t.Errorf("stored %s blob differs between streamed and direct ingest", blob.name)
		}
	}
	if _, err := st.ReadRunEvents("streamed"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("event log survived finish: err=%v", err)
	}
	if rc, err := st.Backend().ReadMeta(live.CheckpointMeta("streamed")); err == nil {
		if data := readBlob(t, rc, nil); len(data) != 0 {
			t.Errorf("checkpoint survived finish: %d bytes", len(data))
		}
	}
}

// TestLiveQueriesMatchFinished checks mid-flight answers: once every
// event is applied (but before finish), reachability, cones and names
// agree with the finished run's labeling.
func TestLiveQueriesMatchFinished(t *testing.T) {
	st, skel, evs, _ := newPaperStream(t)
	ls := live.NewSession(st, "q", skel, nil)
	appendAll(t, ls, evs, 1)
	sess, err := ls.Finish(label.TCM{})
	if err != nil {
		t.Fatal(err)
	}
	n := sess.Run.NumVertices()
	if ls.NumVertices() != n {
		t.Fatalf("live session has %d vertices, finished run %d", ls.NumVertices(), n)
	}
	nm := run.NewNamer(sess.Run)
	for v := 0; v < n; v++ {
		if got, want := ls.Name(dag.VertexID(v)), nm.Name(dag.VertexID(v)); got != want {
			t.Fatalf("vertex %d named %q live, %q finished", v, got, want)
		}
		if got, ok := ls.Vertex(nm.Name(dag.VertexID(v))); !ok || got != dag.VertexID(v) {
			t.Fatalf("Vertex(%q) = %d, %v", nm.Name(dag.VertexID(v)), got, ok)
		}
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if got, want := ls.Reachable(dag.VertexID(u), dag.VertexID(v)), sess.Labels.Reachable(dag.VertexID(u), dag.VertexID(v)); got != want {
				t.Errorf("Reachable(%d,%d) = %v live, %v stored", u, v, got, want)
			}
		}
	}
}

// TestAppendResume pins the offset protocol: an identical resend is a
// no-op, a partial overlap applies only the surplus, a gap and a
// mismatched overlap are refused with nothing applied.
func TestAppendResume(t *testing.T) {
	st, skel, evs, _ := newPaperStream(t)
	ls := live.NewSession(st, "resume", skel, nil)
	if _, err := ls.Append(evs[:4], 0); err != nil {
		t.Fatal(err)
	}
	// Identical resend: 0 applied.
	if n, err := ls.Append(evs[:4], 0); err != nil || n != 0 {
		t.Fatalf("resend: applied=%d err=%v, want 0, nil", n, err)
	}
	// Overlapping resume: only the surplus lands.
	if n, err := ls.Append(evs[2:6], 2); err != nil || n != 2 {
		t.Fatalf("overlap: applied=%d err=%v, want 2, nil", n, err)
	}
	if ls.Seq() != 6 {
		t.Fatalf("Seq() = %d, want 6", ls.Seq())
	}
	// Gap: offset beyond seq.
	if _, err := ls.Append(evs[8:], 8); !errors.Is(err, live.ErrGap) {
		t.Fatalf("gap: err=%v, want ErrGap", err)
	}
	// Conflict: overlap region resent with different events.
	if _, err := ls.Append(evs[1:7], 0); !errors.Is(err, live.ErrConflict) {
		t.Fatalf("conflict: err=%v, want ErrConflict", err)
	}
	if ls.Seq() != 6 {
		t.Fatalf("Seq() after refused appends = %d, want 6", ls.Seq())
	}
}

// TestAppendRejectsBadEvents pins the prevalidation: hostile batches
// are refused atomically with an *EventError.
func TestAppendRejectsBadEvents(t *testing.T) {
	st, skel, evs, _ := newPaperStream(t)
	for _, tc := range []struct {
		name string
		bad  events.Event
	}{
		{"unknown module", events.Event{Kind: events.ModuleExec, Module: "nosuch", Copy: 0}},
		{"unknown copy", events.Event{Kind: events.ModuleExec, Module: evs[len(evs)-1].Module, Copy: 99}},
		{"sparse copy id", events.Event{Kind: events.CopyStart, Copy: 7, Parent: 0, HNode: 1}},
		{"bad hierarchy parent", events.Event{Kind: events.CopyStart, Copy: 1, Parent: 0, HNode: 0}},
	} {
		ls := live.NewSession(st, "bad", skel, nil)
		var evErr *live.EventError
		if _, err := ls.Append([]events.Event{tc.bad}, 0); !errors.As(err, &evErr) {
			t.Errorf("%s: err=%v, want *EventError", tc.name, err)
		}
		if ls.Seq() != 0 {
			t.Errorf("%s: Seq() = %d after refused batch", tc.name, ls.Seq())
		}
	}
}

// TestRecover replays checkpoint + tail and continues identically.
func TestRecover(t *testing.T) {
	st, skel, evs, _ := newPaperStream(t)
	ls := live.NewSession(st, "rec", skel, nil)
	mid := len(evs) / 2
	appendAll(t, ls, evs[:mid], 3)
	if err := ls.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for off := mid; off < len(evs)-2; off += 2 {
		end := off + 2
		if _, err := ls.Append(evs[off:end], off); err != nil {
			t.Fatal(err)
		}
	}
	// Drop the in-memory session; rebuild from store.
	rec, err := live.Recover(st, "rec", skel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq() != ls.Seq() {
		t.Fatalf("recovered Seq() = %d, want %d", rec.Seq(), ls.Seq())
	}
	if rec.CheckpointSeq() != mid {
		t.Fatalf("recovered CheckpointSeq() = %d, want %d", rec.CheckpointSeq(), mid)
	}
	// The recovered session accepts the rest of the stream and finishes.
	if _, err := rec.Append(evs[rec.Seq():], rec.Seq()); err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Finish(label.TCM{}); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverTornTail simulates a crashed append: a partial final
// record in the log must be skipped, checkpointed over, and later
// appends and recoveries must keep working.
func TestRecoverTornTail(t *testing.T) {
	st, skel, evs, _ := newPaperStream(t)
	ls := live.NewSession(st, "torn", skel, nil)
	mid := len(evs) - 4
	appendAll(t, ls, evs[:mid], 5)
	// A crash mid-append leaves a prefix of the batch: one complete
	// record plus a torn line with no newline.
	var partial bytes.Buffer
	if err := events.WriteLog(&partial, evs[mid:mid+1]); err != nil {
		t.Fatal(err)
	}
	partial.WriteString("exec b cop")
	if err := st.AppendRunEvents("torn", partial.Bytes()); err != nil {
		t.Fatal(err)
	}
	rec, err := live.Recover(st, "torn", skel, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The complete line replayed, the torn line did not.
	if rec.Seq() != mid+1 {
		t.Fatalf("recovered Seq() = %d, want %d", rec.Seq(), mid+1)
	}
	// The torn bytes were checkpointed over, so the client's retry of
	// the batch resumes cleanly and later recoveries see no garbage.
	if rec.CheckpointSeq() != mid+1 {
		t.Fatalf("CheckpointSeq() = %d, want %d (torn tail must be checkpointed over)", rec.CheckpointSeq(), mid+1)
	}
	if _, err := rec.Append(evs[mid:], mid); err != nil {
		t.Fatal(err)
	}
	rec2, err := live.Recover(st, "torn", skel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Seq() != len(evs) {
		t.Fatalf("second recovery Seq() = %d, want %d", rec2.Seq(), len(evs))
	}
	if _, err := rec2.Finish(label.TCM{}); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverNothing: a run never streamed to is fs.ErrNotExist.
func TestRecoverNothing(t *testing.T) {
	st, skel, _, _ := newPaperStream(t)
	if _, err := live.Recover(st, "ghost", skel, nil); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err=%v, want fs.ErrNotExist", err)
	}
}

// TestFinishIncomplete: finishing before every fork/loop site has a
// copy is refused with *IncompleteError and the session stays usable.
func TestFinishIncomplete(t *testing.T) {
	st, skel, evs, _ := newPaperStream(t)
	ls := live.NewSession(st, "inc", skel, nil)
	mid := len(evs) / 3
	appendAll(t, ls, evs[:mid], 4)
	var inc *live.IncompleteError
	if _, err := ls.Finish(label.TCM{}); !errors.As(err, &inc) {
		t.Fatalf("Finish on partial stream: err=%v, want *IncompleteError", err)
	}
	// Still appendable; completing the stream makes it finishable.
	if _, err := ls.Append(evs[mid:], mid); err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Finish(label.TCM{}); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryGauges pins the registry bookkeeping healthz reports.
func TestRegistryGauges(t *testing.T) {
	st, skel, evs, _ := newPaperStream(t)
	reg := live.NewRegistry()
	ls := live.NewSession(st, "g", skel, reg.Gauges())
	reg.Put("g", ls)
	appendAll(t, ls, evs, 4)
	stats := reg.Stats()
	if stats.Open != 1 {
		t.Errorf("Open = %d, want 1", stats.Open)
	}
	if stats.Events != int64(len(evs)) {
		t.Errorf("Events = %d, want %d", stats.Events, len(evs))
	}
	if stats.CheckpointLag != int64(len(evs)) {
		t.Errorf("CheckpointLag = %d, want %d", stats.CheckpointLag, len(evs))
	}
	if err := ls.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Stats(); got.CheckpointLag != 0 || got.Checkpoints != 1 {
		t.Errorf("after checkpoint: lag=%d checkpoints=%d, want 0, 1", got.CheckpointLag, got.Checkpoints)
	}
	if reg.Remove("g") != ls {
		t.Error("Remove returned wrong session")
	}
	if got := reg.Stats(); got.Open != 0 {
		t.Errorf("Open after Remove = %d, want 0", got.Open)
	}
	if names := reg.Names(); len(names) != 0 {
		t.Errorf("Names after Remove = %v", names)
	}
}
