// Package live owns per-run streaming ingest sessions: runs that are
// being labeled event-by-event while the workflow still executes,
// instead of arriving as one finished document. Each Session wraps an
// online.Labeler (the paper's Section 9 incremental scheme) fed by
// events.Event appends, tracks its own copy table so the execution tree
// can be reconstructed, and persists every accepted batch to a per-run
// event log blob (store.Backend.AppendEventLog) before applying it —
// the log is the stream's write-ahead log, so a crash loses no accepted
// event. Periodic checkpoints (an atomic meta blob holding the applied
// event prefix) bound what recovery must re-parse from the log to the
// tail written since the last checkpoint, and tolerate the torn final
// record a crashed append may leave.
//
// # Wire protocol
//
// Appends carry an offset: the sequence number of the batch's first
// event. A batch whose offset runs past the applied sequence is a gap
// (ErrGap); a batch overlapping the applied prefix must resend the
// identical events (idempotent resume — anything else is ErrConflict)
// and only the surplus is applied. Copies must be numbered densely in
// start order (copy 0 is the run itself and is never started), parents
// before children and loop iterations in serial order — the convention
// events.Emit produces. Streams following it replay to the same dense
// vertex IDs run.Materialize assigns, which is what lets Finish seal
// the session into a stored run answering queries byte-identically to
// the same run ingested as one document.
//
// # Concurrency
//
// A Session is not self-synchronizing: the serving layer serializes
// appends, checkpoints, finishes and queries per run name (its striped
// run locks — appends under the write side, queries under the read
// side). The Registry and Gauges are safe for concurrent use on their
// own locks/atomics, so health endpoints never block on a stream.
package live

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dag"
	"repro/internal/events"
	"repro/internal/label"
	"repro/internal/online"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/store"
)

// ErrGap reports an append whose offset lies beyond the applied event
// sequence: the client skipped ahead and must resume from Seq.
var ErrGap = errors.New("live: offset beyond the applied event sequence")

// ErrConflict reports an append overlapping the applied prefix with
// different events: resume must resend what was acknowledged verbatim.
var ErrConflict = errors.New("live: resent events conflict with the applied history")

// EventError reports a semantically invalid event (unknown module,
// out-of-sequence copy, wrong hierarchy parent) at Index within the
// fresh part of a batch. Nothing from the batch is applied.
type EventError struct {
	Index int
	Err   error
}

func (e *EventError) Error() string { return fmt.Sprintf("live: event %d: %v", e.Index, e.Err) }
func (e *EventError) Unwrap() error { return e.Err }

// IncompleteError reports a Finish on a stream that does not describe a
// complete run: some fork or loop site has no copy yet, or the exec
// order diverged from the Emit convention so the materialized vertex
// numbering would not match the live one.
type IncompleteError struct{ Err error }

func (e *IncompleteError) Error() string { return fmt.Sprintf("live: run incomplete: %v", e.Err) }
func (e *IncompleteError) Unwrap() error { return e.Err }

// Gauges are the streaming subsystem's process-wide counters, mirrored
// into atomics so /healthz reads them without touching any run lock.
type Gauges struct {
	open        atomic.Int64
	events      atomic.Int64
	renumbers   atomic.Int64
	replays     atomic.Int64
	checkpoints atomic.Int64
	lag         atomic.Int64
}

// Stats is a snapshot of Gauges for serialization.
type Stats struct {
	// Open counts live sessions currently registered.
	Open int64 `json:"open"`
	// Events counts events applied in this process (including replays).
	Events int64 `json:"events"`
	// Renumbers counts online-labeler key redistributions.
	Renumbers int64 `json:"renumbers"`
	// Replays counts crash recoveries performed.
	Replays int64 `json:"replays"`
	// Checkpoints counts checkpoints written.
	Checkpoints int64 `json:"checkpoints"`
	// CheckpointLag sums, over open sessions, the events applied since
	// each session's last checkpoint — the replay debt a crash right now
	// would incur.
	CheckpointLag int64 `json:"checkpoint_lag"`
}

func (g *Gauges) snapshot() Stats {
	return Stats{
		Open:          g.open.Load(),
		Events:        g.events.Load(),
		Renumbers:     g.renumbers.Load(),
		Replays:       g.replays.Load(),
		Checkpoints:   g.checkpoints.Load(),
		CheckpointLag: g.lag.Load(),
	}
}

// Registry holds the open live sessions by run name. Lookup/insert/
// remove are guarded by its own lock; the sessions themselves are
// still the caller's to serialize per name.
type Registry struct {
	mu       sync.RWMutex
	sessions map[string]*Session // guarded by mu
	g        Gauges
}

// NewRegistry returns an empty session registry.
func NewRegistry() *Registry {
	return &Registry{sessions: make(map[string]*Session)}
}

// Gauges returns the registry's counters, to pass into NewSession and
// Recover so session activity is reflected in Stats.
func (r *Registry) Gauges() *Gauges { return &r.g }

// Get returns the live session for name, or nil.
func (r *Registry) Get(name string) *Session {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.sessions[name]
}

// Put registers a session under name.
func (r *Registry) Put(name string, s *Session) {
	r.mu.Lock()
	r.sessions[name] = s
	r.mu.Unlock()
	r.g.open.Add(1)
}

// Remove unregisters and returns name's session (nil if absent),
// retiring its contribution to the open and checkpoint-lag gauges.
func (r *Registry) Remove(name string) *Session {
	r.mu.Lock()
	s := r.sessions[name]
	delete(r.sessions, name)
	r.mu.Unlock()
	if s != nil {
		r.g.open.Add(-1)
		r.g.lag.Add(-int64(s.SinceCheckpoint()))
	}
	return s
}

// Len returns the number of open sessions.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sessions)
}

// Names returns the open sessions' run names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.sessions))
	for n := range r.sessions {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Stats snapshots the registry's gauges.
func (r *Registry) Stats() Stats { return r.g.snapshot() }

// CheckpointMeta returns the store meta blob name holding the named
// run's stream checkpoint. An absent or empty blob means no checkpoint.
func CheckpointMeta(name string) string { return ".ckpt-" + name }

// copyState is the session's own record of one started copy: the
// labeler's Copy fields are unexported, and Finish needs the copy tree
// back to rebuild the execution tree.
type copyState struct {
	h      *online.Copy
	hnode  int
	parent int
	// kids lists the copies started under this copy per hierarchy child
	// node, in start order — exactly an ExecTree site's copy list.
	kids map[int][]int
}

// Session is one run being ingested event-by-event.
type Session struct {
	name string
	st   *store.Store
	sp   *spec.Spec
	lab  *online.Labeler
	g    *Gauges

	copies  []copyState
	history []events.Event
	origins []dag.VertexID
	// names/byName/counts are the incremental equivalent of run.Namer:
	// occurrence names assigned as executions arrive, in the same
	// per-origin counting order NewNamer uses on the materialized run.
	names  []string
	byName map[string]dag.VertexID
	counts []int

	// logBytes is how much of the run's event log this session's history
	// accounts for; appends extend it, recovery re-derives it.
	logBytes     int64
	ckptSeq      int
	ckptLogBytes int64

	lastRenumbers int
	broken        bool

	// lastActive is the wall time (unix nanos) of the session's last
	// append or query, stored atomically so the serving layer's idle-TTL
	// sweep reads it without the run lock. Zero means never touched;
	// NewSession stamps creation time so a session is never instantly
	// idle.
	lastActive atomic.Int64
}

// Touch stamps the session as active now. The serving layer calls it on
// every append and query; SweepIdleStreams compares against it.
func (s *Session) Touch() { s.lastActive.Store(time.Now().UnixNano()) }

// LastActive returns the time of the session's last Touch.
func (s *Session) LastActive() time.Time { return time.Unix(0, s.lastActive.Load()) }

// NewSession starts an empty live session for name over the store's
// specification. Pass the registry's Gauges (nil disconnects metrics).
func NewSession(st *store.Store, name string, skel label.Labeling, g *Gauges) *Session {
	if g == nil {
		g = new(Gauges)
	}
	sp := st.Spec()
	l := online.New(sp, skel)
	s := &Session{
		name:   name,
		st:     st,
		sp:     sp,
		lab:    l,
		g:      g,
		copies: []copyState{{h: l.Root(), hnode: 0, parent: -1}},
		byName: make(map[string]dag.VertexID),
		counts: make([]int, sp.NumVertices()),
	}
	s.Touch()
	return s
}

// Seq returns the number of events applied — the offset the next
// append continues from.
func (s *Session) Seq() int { return len(s.history) }

// NumCopies returns the number of started copies including the root.
func (s *Session) NumCopies() int { return len(s.copies) }

// NumVertices returns the number of module executions recorded.
func (s *Session) NumVertices() int { return len(s.origins) }

// Renumbers reports the labeler's key redistributions so far.
func (s *Session) Renumbers() int { return s.lab.Renumbers() }

// CheckpointSeq returns the sequence the last checkpoint covered
// (0 when none was written).
func (s *Session) CheckpointSeq() int { return s.ckptSeq }

// SinceCheckpoint returns how many applied events a crash right now
// would have to re-parse from the event log.
func (s *Session) SinceCheckpoint() int { return len(s.history) - s.ckptSeq }

// EventLogBytes returns how many event-log bytes the session covers.
func (s *Session) EventLogBytes() int64 { return s.logBytes }

// Broken reports whether a storage failure left the session's durable
// state unknown; a broken session rejects appends until re-recovered.
func (s *Session) Broken() bool { return s.broken }

// Append applies a batch whose first event has sequence number offset.
// Events up to the current sequence must match the applied history
// (they are skipped — idempotent resume after a lost response); the
// rest is validated, durably appended to the run's event log, and only
// then applied to the labeler. It returns how many events were newly
// applied. On ErrGap, ErrConflict or *EventError nothing was applied;
// on a storage error the session is marked broken (the log's tail is
// unknown) and must be rebuilt with Recover.
func (s *Session) Append(evs []events.Event, offset int) (int, error) {
	if s.broken {
		return 0, fmt.Errorf("live: session %q needs recovery after a storage failure", s.name)
	}
	if offset < 0 || offset > len(s.history) {
		return 0, fmt.Errorf("%w: offset %d with %d applied", ErrGap, offset, len(s.history))
	}
	overlap := len(s.history) - offset
	if overlap > len(evs) {
		overlap = len(evs)
	}
	for i := 0; i < overlap; i++ {
		if evs[i] != s.history[offset+i] {
			return 0, fmt.Errorf("%w: batch event %d differs at sequence %d", ErrConflict, i, offset+i)
		}
	}
	fresh := evs[overlap:]
	if len(fresh) == 0 {
		return 0, nil
	}
	if err := s.prevalidate(fresh); err != nil {
		return 0, err
	}
	var buf bytes.Buffer
	if err := events.WriteLog(&buf, fresh); err != nil {
		return 0, err
	}
	if err := s.st.AppendRunEvents(s.name, buf.Bytes()); err != nil {
		// A transient error guarantees no bytes landed (the store failure
		// model), so the session stays consistent and appendable — the
		// client retries the batch at the same offset. Any other error
		// means the append may have landed partially; only a fresh
		// Recover can re-establish what is actually on disk.
		if !store.IsTransient(err) {
			s.broken = true
		}
		return 0, fmt.Errorf("live: appending event log for %q: %w", s.name, err)
	}
	s.logBytes += int64(buf.Len())
	if err := s.ingest(fresh); err != nil {
		s.broken = true
		return 0, fmt.Errorf("live: applying events for %q: %w", s.name, err)
	}
	s.g.events.Add(int64(len(fresh)))
	s.g.lag.Add(int64(len(fresh)))
	s.bumpRenumbers()
	return len(fresh), nil
}

func (s *Session) bumpRenumbers() {
	if rn := s.lab.Renumbers(); rn != s.lastRenumbers {
		s.g.renumbers.Add(int64(rn - s.lastRenumbers))
		s.lastRenumbers = rn
	}
}

// prevalidate checks a batch against the session state without mutating
// it, replicating every check StartCopy and AddExec would make — so
// once the batch is in the write-ahead log, applying it cannot fail.
func (s *Session) prevalidate(evs []events.Event) error {
	base := len(s.copies)
	var newHNodes []int // hnodes of copies this batch starts
	hnodeOf := func(id int) (int, bool) {
		switch {
		case id < 0:
			return 0, false
		case id < base:
			return s.copies[id].hnode, true
		case id-base < len(newHNodes):
			return newHNodes[id-base], true
		}
		return 0, false
	}
	for i, e := range evs {
		switch e.Kind {
		case events.CopyStart:
			if e.Copy != base+len(newHNodes) {
				return &EventError{i, fmt.Errorf("copy %d out of sequence (next is %d; copies are numbered densely in start order)", e.Copy, base+len(newHNodes))}
			}
			ph, ok := hnodeOf(e.Parent)
			if !ok {
				return &EventError{i, fmt.Errorf("unknown parent copy %d", e.Parent)}
			}
			if e.HNode < 1 || e.HNode >= s.sp.Hier.NumNodes() || s.sp.Hier.Parent[e.HNode] != ph {
				return &EventError{i, fmt.Errorf("hierarchy node %d is not a child of copy %d's node %d", e.HNode, e.Parent, ph)}
			}
			newHNodes = append(newHNodes, e.HNode)
		case events.ModuleExec:
			h, ok := hnodeOf(e.Copy)
			if !ok {
				return &EventError{i, fmt.Errorf("unknown copy %d", e.Copy)}
			}
			orig, known := s.sp.VertexOf(e.Module)
			if !known {
				return &EventError{i, fmt.Errorf("unknown module %q", e.Module)}
			}
			if h != 0 && !s.sp.SubgraphOf(h).HasVertex(orig) {
				return &EventError{i, fmt.Errorf("module %q is not in copy %d's subgraph", e.Module, e.Copy)}
			}
		default:
			return &EventError{i, fmt.Errorf("unknown event kind %d", e.Kind)}
		}
	}
	return nil
}

// ingest applies prevalidated events to the labeler and records them in
// the history. Errors are invariant violations, not client mistakes.
func (s *Session) ingest(evs []events.Event) error {
	for _, e := range evs {
		if err := s.apply(e); err != nil {
			return err
		}
		s.history = append(s.history, e)
	}
	return nil
}

func (s *Session) apply(e events.Event) error {
	switch e.Kind {
	case events.CopyStart:
		parent := &s.copies[e.Parent]
		c, err := s.lab.StartCopy(parent.h, e.HNode)
		if err != nil {
			return err
		}
		if parent.kids == nil {
			parent.kids = make(map[int][]int)
		}
		parent.kids[e.HNode] = append(parent.kids[e.HNode], e.Copy)
		s.copies = append(s.copies, copyState{h: c, hnode: e.HNode, parent: e.Parent})
	case events.ModuleExec:
		orig, _ := s.sp.VertexOf(e.Module)
		v, err := s.lab.AddExec(s.copies[e.Copy].h, orig)
		if err != nil {
			return err
		}
		s.origins = append(s.origins, orig)
		s.counts[orig]++
		name := fmt.Sprintf("%s%d", s.sp.NameOf(orig), s.counts[orig])
		s.names = append(s.names, name)
		s.byName[name] = v
	}
	return nil
}

// Checkpoint atomically persists the applied event prefix to the run's
// checkpoint meta blob, so recovery replays it from one validated blob
// and re-parses only the log bytes written afterwards.
func (s *Session) Checkpoint() error {
	if s.broken {
		return fmt.Errorf("live: session %q needs recovery after a storage failure", s.name)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "ckpt %d %d\n", len(s.history), s.logBytes)
	if err := events.WriteLog(&buf, s.history); err != nil {
		return err
	}
	if err := s.st.Backend().WriteMeta(CheckpointMeta(s.name), buf.Bytes()); err != nil {
		return fmt.Errorf("live: checkpointing %q: %w", s.name, err)
	}
	covered := len(s.history) - s.ckptSeq
	s.ckptSeq = len(s.history)
	s.ckptLogBytes = s.logBytes
	s.g.checkpoints.Add(1)
	s.g.lag.Add(-int64(covered))
	return nil
}

// Recover rebuilds the live session for name from its durable state:
// the checkpoint's event prefix (if one was written) plus the event-log
// tail beyond the bytes the checkpoint covers. A torn final record —
// the partial line a crashed append can leave — is tolerated: complete
// lines replay (they were validated before ever reaching the log), the
// partial tail is skipped, and a fresh checkpoint is written over it so
// no future recovery parses those bytes (later appends land after them,
// and recovery slices the log at the checkpoint's byte offset, so the
// garbage is never glued into a parsed record). A run that was never
// streamed to returns an error satisfying errors.Is(err, fs.ErrNotExist).
func Recover(st *store.Store, name string, skel label.Labeling, g *Gauges) (*Session, error) {
	s := NewSession(st, name, skel, g)
	haveCkpt := false
	if rc, err := st.Backend().ReadMeta(CheckpointMeta(name)); err == nil {
		data, rerr := io.ReadAll(rc)
		rc.Close()
		if rerr != nil {
			return nil, fmt.Errorf("live: reading checkpoint for %q: %w", name, rerr)
		}
		if len(data) > 0 {
			seq, logBytes, evs, perr := parseCheckpoint(data)
			if perr != nil {
				return nil, fmt.Errorf("live: checkpoint for %q: %w", name, perr)
			}
			if len(evs) != seq {
				return nil, fmt.Errorf("live: checkpoint for %q holds %d events but declares %d", name, len(evs), seq)
			}
			if err := s.prevalidate(evs); err != nil {
				return nil, fmt.Errorf("live: checkpoint for %q: %w", name, err)
			}
			if err := s.ingest(evs); err != nil {
				return nil, fmt.Errorf("live: replaying checkpoint for %q: %w", name, err)
			}
			s.ckptSeq, s.ckptLogBytes = seq, logBytes
			haveCkpt = true
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("live: reading checkpoint for %q: %w", name, err)
	}

	var data []byte
	switch rc, err := st.ReadRunEvents(name); {
	case err == nil:
		data, err = io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return nil, fmt.Errorf("live: reading event log for %q: %w", name, err)
		}
	case errors.Is(err, fs.ErrNotExist):
		if !haveCkpt {
			return nil, fmt.Errorf("live: no streamed state for run %q: %w", name, fs.ErrNotExist)
		}
	default:
		return nil, err
	}
	if int64(len(data)) < s.ckptLogBytes {
		return nil, fmt.Errorf("live: event log for %q is %d bytes but its checkpoint covers %d", name, len(data), s.ckptLogBytes)
	}
	tail := data[s.ckptLogBytes:]
	clean := 0
	if i := bytes.LastIndexByte(tail, '\n'); i >= 0 {
		clean = i + 1
	}
	evs, err := events.ReadLog(bytes.NewReader(tail[:clean]))
	if err != nil {
		return nil, fmt.Errorf("live: event log for %q: %w", name, err)
	}
	if err := s.prevalidate(evs); err != nil {
		return nil, fmt.Errorf("live: event log for %q: %w", name, err)
	}
	if err := s.ingest(evs); err != nil {
		return nil, fmt.Errorf("live: replaying event log for %q: %w", name, err)
	}
	s.logBytes = s.ckptLogBytes + int64(clean)
	s.g.replays.Add(1)
	s.g.events.Add(int64(len(s.history)))
	s.g.lag.Add(int64(s.SinceCheckpoint()))
	s.bumpRenumbers()
	if clean < len(tail) {
		// Torn tail: account the garbage bytes to the session and
		// checkpoint over them, so appends resume past them and no
		// reader ever parses them.
		s.logBytes = int64(len(data))
		if err := s.Checkpoint(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func parseCheckpoint(data []byte) (seq int, logBytes int64, evs []events.Event, err error) {
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		return 0, 0, nil, errors.New("missing header line")
	}
	if _, err := fmt.Sscanf(string(data[:i]), "ckpt %d %d", &seq, &logBytes); err != nil {
		return 0, 0, nil, fmt.Errorf("malformed header %q: %w", data[:i], err)
	}
	if seq < 0 || logBytes < 0 {
		return 0, 0, nil, fmt.Errorf("negative header values in %q", data[:i])
	}
	evs, err = events.ReadLog(bytes.NewReader(data[i+1:]))
	if err != nil {
		return 0, 0, nil, err
	}
	return seq, logBytes, evs, nil
}

// Finish seals the session into a normal stored run: the execution tree
// is rebuilt from the copy table, materialized, checked against the
// live state (same vertex count, same origin per vertex — guaranteed
// for Emit-convention streams), labeled and persisted through
// store.PutRunSession. On success the event log and checkpoint are
// cleaned up best-effort (a failure leaves a stale log the serving
// layer's store-wins rule deletes lazily) and the returned session is
// ready to serve queries. An *IncompleteError means the stream does not
// yet describe a complete run and the session stays appendable.
func (s *Session) Finish(scheme label.Scheme) (*store.Session, error) {
	r, err := s.MaterializedRun()
	if err != nil {
		return nil, err
	}
	sess, err := s.st.PutRunSession(s.name, r, nil, scheme)
	if err != nil {
		return nil, err
	}
	//provlint:ignore droppederr best-effort cleanup after a durable PutRunSession; a stale log is reclaimed lazily by the serving layer's store-wins rule (documented above)
	_ = s.st.DeleteRunEvents(s.name)
	//provlint:ignore droppederr best-effort cleanup after a durable PutRunSession; a stale log is reclaimed lazily by the serving layer's store-wins rule (documented above)
	_ = s.st.Backend().WriteMeta(CheckpointMeta(s.name), nil)
	return sess, nil
}

// MaterializedRun rebuilds the run graph the streamed execution tree
// describes so far — the same materialization Finish seals — and
// verifies it matches the live vertex numbering (same count, same
// origin per vertex; guaranteed for Emit-convention streams once every
// fork and loop site has its copies). Queries that need actual run
// edges, like regular path queries, evaluate against the result: its
// vertex IDs are exactly the session's, so the live labels answer
// reachability for it. An *IncompleteError means the stream does not
// yet describe a complete run. Callers serialize against appends via
// the session's run lock (the read side suffices; nothing is mutated).
func (s *Session) MaterializedRun() (*run.Run, error) {
	r, _, err := run.Materialize(s.sp, s.execTree())
	if err != nil {
		return nil, &IncompleteError{err}
	}
	if r.NumVertices() != len(s.origins) {
		return nil, &IncompleteError{fmt.Errorf("materialization yields %d vertices, the stream recorded %d module executions", r.NumVertices(), len(s.origins))}
	}
	for v, o := range s.origins {
		if r.Origin[v] != o {
			return nil, &IncompleteError{fmt.Errorf("exec order diverges from the materialization order at vertex %d (streams must follow the Emit convention)", v)}
		}
	}
	return r, nil
}

// execTree rebuilds the run's execution tree from the copy table.
func (s *Session) execTree() *run.ExecTree {
	return &run.ExecTree{HNode: 0, Copies: []*run.ExecCopy{s.execCopy(0)}}
}

func (s *Session) execCopy(id int) *run.ExecCopy {
	c := s.copies[id]
	children := s.sp.Hier.Children[c.hnode]
	sites := make([]*run.ExecTree, len(children))
	for i, h := range children {
		t := &run.ExecTree{HNode: h}
		for _, kid := range c.kids[h] {
			t.Copies = append(t.Copies, s.execCopy(kid))
		}
		sites[i] = t
	}
	return &run.ExecCopy{Sites: sites}
}

// Name returns the display name of live run vertex v (same occurrence
// numbering run.Namer assigns on the finished run).
func (s *Session) Name(v dag.VertexID) string { return s.names[v] }

// Vertex resolves a vertex reference exactly like the stored-session
// path: occurrence name first, then a numeric vertex ID.
func (s *Session) Vertex(ref string) (dag.VertexID, bool) {
	if v, ok := s.byName[ref]; ok {
		return v, true
	}
	if len(ref) == 0 {
		return 0, false
	}
	digits := ref
	if digits[0] == '+' {
		digits = digits[1:]
	}
	if len(digits) == 0 {
		return 0, false
	}
	id := 0
	for i := 0; i < len(digits); i++ {
		c := digits[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		if id = id*10 + int(c-'0'); id >= len(s.origins) {
			return 0, false
		}
	}
	return dag.VertexID(id), true
}

// Reachable answers one reachability query on the live labels.
func (s *Session) Reachable(u, v dag.VertexID) bool { return s.lab.Reachable(u, v) }

// ByContext reports whether Reachable(u, v) was decided by the context
// comparison alone (Algorithm 3's fast path), mirroring the stored
// labeling's AnsweredByContext.
func (s *Session) ByContext(u, v dag.VertexID) bool {
	a, b := s.lab.CurrentLabel(u), s.lab.CurrentLabel(v)
	return (a.K2 < b.K2) != (a.K3 < b.K3)
}

// Upstream returns every live vertex that reaches v (excluding v), by
// label scan — the live counterpart of lineage.UpstreamByLabels.
func (s *Session) Upstream(v dag.VertexID) []dag.VertexID {
	var out []dag.VertexID
	for u := 0; u < len(s.origins); u++ {
		if dag.VertexID(u) != v && s.lab.Reachable(dag.VertexID(u), v) {
			out = append(out, dag.VertexID(u))
		}
	}
	return out
}

// Downstream is the forward counterpart of Upstream.
func (s *Session) Downstream(v dag.VertexID) []dag.VertexID {
	var out []dag.VertexID
	for u := 0; u < len(s.origins); u++ {
		if dag.VertexID(u) != v && s.lab.Reachable(v, dag.VertexID(u)) {
			out = append(out, dag.VertexID(u))
		}
	}
	return out
}
