// Package export renders specifications, runs and execution plans as
// Graphviz DOT documents, with fork and loop regions drawn as clusters —
// matching the dotted-oval/back-edge notation of the paper's figures.
package export

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/dag"
	"repro/internal/plan"
	"repro/internal/run"
	"repro/internal/spec"
)

// SpecDOT renders the specification: fork subgraphs as dashed clusters
// around their internal vertices, loop subgraphs as dashed back-edges
// from sink to source.
func SpecDOT(w io.Writer, s *spec.Spec, name string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=circle];\n", nonEmpty(name, "specification"))
	// Nest fork clusters by hierarchy depth: emit clusters for forks.
	var emitNode func(h int, indent string)
	emitted := make(map[dag.VertexID]bool)
	emitNode = func(h int, indent string) {
		sub := s.SubgraphOf(h)
		if sub != nil && sub.Kind == spec.Fork {
			fmt.Fprintf(&b, "%ssubgraph cluster_f%d {\n%s  style=dashed; label=\"fork %s..%s\";\n",
				indent, h, indent, s.NameOf(sub.Source), s.NameOf(sub.Sink))
			indent += "  "
		}
		for _, c := range s.Hier.Children[h] {
			emitNode(c, indent)
		}
		for _, v := range s.DirectVertices(h) {
			if !emitted[v] {
				emitted[v] = true
				fmt.Fprintf(&b, "%s%q;\n", indent, s.NameOf(v))
			}
		}
		// Loop terminals (dominated by the loop) belong to its cluster
		// level; they are covered by DirectVertices of the loop node.
		if sub != nil && sub.Kind == spec.Fork {
			indent = indent[:len(indent)-2]
			fmt.Fprintf(&b, "%s}\n", indent)
		}
	}
	emitNode(0, "  ")
	// Any vertex not yet emitted (e.g. terminals shared across regions).
	for v := 0; v < s.NumVertices(); v++ {
		if !emitted[dag.VertexID(v)] {
			fmt.Fprintf(&b, "  %q;\n", s.NameOf(dag.VertexID(v)))
		}
	}
	for _, e := range s.Graph.Edges() {
		fmt.Fprintf(&b, "  %q -> %q;\n", s.NameOf(e.Tail), s.NameOf(e.Head))
	}
	for _, sub := range s.Subgraphs {
		if sub.Kind == spec.Loop {
			fmt.Fprintf(&b, "  %q -> %q [style=dashed, constraint=false, color=gray, label=loop];\n",
				s.NameOf(sub.Sink), s.NameOf(sub.Source))
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// RunDOT renders a run with occurrence names; when a plan is supplied,
// vertices are colored by the kind of their context (root, fork copy,
// loop copy).
func RunDOT(w io.Writer, r *run.Run, p *plan.Plan, name string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=circle];\n", nonEmpty(name, "run"))
	for v := 0; v < r.NumVertices(); v++ {
		attrs := ""
		if p != nil {
			ctx := p.Context[v]
			switch {
			case ctx.IsRoot():
				attrs = ` [fillcolor=lightgray, style=filled]`
			case p.Spec.KindOf(ctx.HNode) == spec.Fork:
				attrs = ` [fillcolor=lightblue, style=filled]`
			default:
				attrs = ` [fillcolor=lightyellow, style=filled]`
			}
		}
		fmt.Fprintf(&b, "  %q%s;\n", r.NameOf(dag.VertexID(v)), attrs)
	}
	for _, e := range r.Graph.Edges() {
		fmt.Fprintf(&b, "  %q -> %q;\n", r.NameOf(e.Tail), r.NameOf(e.Head))
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// PlanDOT renders an execution plan tree: + nodes as circles annotated
// with their subgraph, − nodes as boxes, loop − children connected in
// serial order.
func PlanDOT(w io.Writer, p *plan.Plan, name string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  node [fontsize=10];\n", nonEmpty(name, "plan"))
	labelOf := func(n *plan.Node) string {
		region := "G"
		if n.HNode != 0 {
			sub := p.Spec.SubgraphOf(n.HNode)
			region = fmt.Sprintf("%s %s..%s", sub.Kind, p.Spec.NameOf(sub.Source), p.Spec.NameOf(sub.Sink))
		}
		if n.Plus {
			return region + " +"
		}
		return region + " −"
	}
	for _, n := range p.Nodes {
		shape := "circle"
		if !n.Plus {
			shape = "box"
		}
		fmt.Fprintf(&b, "  n%d [label=%q, shape=%s];\n", n.ID, labelOf(n), shape)
	}
	for _, n := range p.Nodes {
		for i, c := range n.Children {
			attr := ""
			if !n.Plus && p.KindOf(n) == spec.Loop && i > 0 {
				attr = " [label=\"then\"]"
			}
			fmt.Fprintf(&b, "  n%d -> n%d%s;\n", n.ID, c.ID, attr)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func nonEmpty(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}
