package export_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/export"
	"repro/internal/run"
	"repro/internal/spec"
)

func TestSpecDOT(t *testing.T) {
	s := spec.PaperSpec()
	var buf bytes.Buffer
	if err := export.SpecDOT(&buf, s, "paper"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph \"paper\"",
		"cluster_f",      // fork clusters
		"label=loop",     // loop back-edges
		`"a" -> "b"`,     // real edges
		`"c" -> "b" [st`, // the L1 back-edge c -> b
	} {
		if !strings.Contains(out, want) {
			t.Errorf("spec DOT missing %q\n%s", want, out)
		}
	}
	// Every module appears exactly once as a node declaration (a line
	// consisting solely of the quoted name).
	decls := make(map[string]int)
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, `"`) && strings.HasSuffix(trimmed, `";`) && !strings.Contains(trimmed, "->") {
			decls[strings.Trim(trimmed, `";`)]++
		}
	}
	for _, m := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		if decls[m] != 1 {
			t.Errorf("module %s declared %d times", m, decls[m])
		}
	}
}

func TestRunAndPlanDOT(t *testing.T) {
	s := spec.PaperSpec()
	r, p := run.Figure3Run(s)
	var buf bytes.Buffer
	if err := export.RunDOT(&buf, r, p, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"b1"`, `"c3"`, `"f2"`, "lightblue", "lightyellow", "lightgray"} {
		if !strings.Contains(out, want) {
			t.Errorf("run DOT missing %q", want)
		}
	}
	// Without a plan: no coloring.
	buf.Reset()
	if err := export.RunDOT(&buf, r, nil, "bare"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "fillcolor") {
		t.Error("bare run DOT should not color vertices")
	}
	buf.Reset()
	if err := export.PlanDOT(&buf, p, "plan"); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "shape=box") || !strings.Contains(out, "shape=circle") {
		t.Error("plan DOT should mix + circles and − boxes")
	}
	if !strings.Contains(out, `label="then"`) {
		t.Error("plan DOT should mark serial loop order")
	}
	if strings.Count(out, " -> ") != len(p.Nodes)-1 {
		t.Errorf("plan DOT should have exactly |V|-1 tree edges")
	}
}
