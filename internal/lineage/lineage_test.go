package lineage_test

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/lineage"
	"repro/internal/provdata"
	"repro/internal/run"
	"repro/internal/spec"
)

func figure3(t testing.TB) (*run.Run, *core.Labeling) {
	s := spec.PaperSpec()
	r, _ := run.Figure3Run(s)
	skel, err := label.TCM{}.Build(s.Graph)
	if err != nil {
		t.Fatal(err)
	}
	l, err := core.LabelRun(r, skel)
	if err != nil {
		t.Fatal(err)
	}
	return r, l
}

func byName(t testing.TB, r *run.Run, name string) dag.VertexID {
	for v := 0; v < r.NumVertices(); v++ {
		if r.NameOf(dag.VertexID(v)) == name {
			return dag.VertexID(v)
		}
	}
	t.Fatalf("vertex %s not found", name)
	return -1
}

func names(r *run.Run, vs []dag.VertexID) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = r.NameOf(v)
	}
	sort.Strings(out)
	return out
}

func TestUpstreamDownstreamFigure3(t *testing.T) {
	r, _ := figure3(t)
	// Upstream of c2: a1, b1, c1, b2 (the loop chain in the first fork copy).
	up := names(r, lineage.Upstream(r, byName(t, r, "c2")))
	want := []string{"a1", "b1", "b2", "c1"}
	if len(up) != len(want) {
		t.Fatalf("Upstream(c2) = %v, want %v", up, want)
	}
	for i := range want {
		if up[i] != want[i] {
			t.Fatalf("Upstream(c2) = %v, want %v", up, want)
		}
	}
	// Downstream of e1: f1, g1, then the whole second L2 iteration and h1.
	down := names(r, lineage.Downstream(r, byName(t, r, "e1")))
	wantDown := []string{"e2", "f1", "f2", "f3", "g1", "g2", "h1"}
	if len(down) != len(wantDown) {
		t.Fatalf("Downstream(e1) = %v, want %v", down, wantDown)
	}
	for i := range wantDown {
		if down[i] != wantDown[i] {
			t.Fatalf("Downstream(e1) = %v, want %v", down, wantDown)
		}
	}
}

func TestLabelScanMatchesTraversal(t *testing.T) {
	r, l := figure3(t)
	for v := 0; v < r.NumVertices(); v++ {
		vt := dag.VertexID(v)
		upT := names(r, lineage.Upstream(r, vt))
		upL := names(r, lineage.UpstreamByLabels(l, vt))
		if len(upT) != len(upL) {
			t.Fatalf("vertex %s: traversal %v vs labels %v", r.NameOf(vt), upT, upL)
		}
		for i := range upT {
			if upT[i] != upL[i] {
				t.Fatalf("vertex %s: traversal %v vs labels %v", r.NameOf(vt), upT, upL)
			}
		}
		downT := names(r, lineage.Downstream(r, vt))
		downL := names(r, lineage.DownstreamByLabels(l, vt))
		if len(downT) != len(downL) {
			t.Fatalf("vertex %s down: %v vs %v", r.NameOf(vt), downT, downL)
		}
	}
}

func TestExplain(t *testing.T) {
	r, l := figure3(t)
	u, v := byName(t, r, "a1"), byName(t, r, "g2")
	path := lineage.Explain(r, u, v)
	if path == nil || path[0] != u || path[len(path)-1] != v {
		t.Fatalf("Explain(a1,g2) = %v", path)
	}
	// Every consecutive pair must be a real edge.
	for i := 0; i+1 < len(path); i++ {
		if !r.Graph.HasEdge(path[i], path[i+1]) {
			t.Fatalf("path step %d not an edge", i)
		}
	}
	if lineage.Explain(r, byName(t, r, "b1"), byName(t, r, "c3")) != nil {
		t.Error("parallel fork copies should have no explaining path")
	}
	if p := lineage.Explain(r, u, u); len(p) != 1 || p[0] != u {
		t.Error("self path should be the singleton")
	}
	_ = l
}

// Property: Explain returns a valid path exactly when labels say
// reachable.
func TestQuickExplainConsistentWithLabels(t *testing.T) {
	s := spec.PaperSpec()
	skel, _ := label.TCM{}.Build(s.Graph)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		et := run.RandomExecSteps(s, rng, rng.Intn(40))
		r, _ := run.MustMaterialize(s, et)
		l, err := core.LabelRun(r, skel)
		if err != nil {
			return false
		}
		n := r.NumVertices()
		for q := 0; q < 100; q++ {
			u := dag.VertexID(rng.Intn(n))
			v := dag.VertexID(rng.Intn(n))
			path := lineage.Explain(r, u, v)
			if (path != nil) != l.Reachable(u, v) {
				return false
			}
			for i := 0; i+1 < len(path); i++ {
				if !r.Graph.HasEdge(path[i], path[i+1]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: ExplainData returns a chain exactly when DependsOn holds
// (every channel carries at least one item, making the label test and
// the chain definition equivalent).
func TestQuickExplainDataConsistent(t *testing.T) {
	s := spec.PaperSpec()
	skel, _ := label.TCM{}.Build(s.Graph)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		et := run.RandomExecSteps(s, rng, rng.Intn(20))
		r, _ := run.MustMaterialize(s, et)
		ann := provdata.RandomItems(r, rng, 1.2, 0.4)
		mod, err := core.LabelRun(r, skel)
		if err != nil {
			return false
		}
		dl, err := provdata.LabelData(ann, mod)
		if err != nil {
			return false
		}
		k := len(ann.Items)
		for q := 0; q < 100; q++ {
			x := provdata.ItemID(rng.Intn(k))
			y := provdata.ItemID(rng.Intn(k))
			if x == y {
				continue
			}
			chain := lineage.ExplainData(r, ann, x, y)
			if (chain != nil) != dl.DependsOn(x, y) {
				t.Logf("seed %d: chain/%v DependsOn/%v for (%d,%d)", seed, chain != nil, dl.DependsOn(x, y), x, y)
				return false
			}
			// Verify the chain structure: consecutive producer/consumer links.
			for i := 0; i+1 < len(chain); i++ {
				a, b := ann.Items[chain[i]], ann.Items[chain[i+1]]
				linked := false
				for _, c := range a.Consumers {
					if c == b.Producer {
						linked = true
					}
				}
				if !linked {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestConeSubgraph(t *testing.T) {
	r, _ := figure3(t)
	g, members := lineage.ConeSubgraph(r, byName(t, r, "c2"))
	if g.NumVertices() != 5 { // a1,b1,c1,b2 + c2
		t.Fatalf("cone has %d vertices, want 5", g.NumVertices())
	}
	if len(members) != g.NumVertices() {
		t.Fatal("member map size mismatch")
	}
	// The cone must be a connected chain ending at c2 with 4 edges.
	if g.NumEdges() != 4 {
		t.Fatalf("cone has %d edges, want 4", g.NumEdges())
	}
	if !g.IsAcyclic() {
		t.Fatal("cone must be acyclic")
	}
}
