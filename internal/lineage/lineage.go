// Package lineage answers the introduction's two motivating provenance
// workflows over labeled runs: tracing everything a good result was
// derived from (backward cones), finding everything a bad input affected
// (forward cones), and producing concrete dependency paths as evidence.
//
// Cone enumeration comes in two flavors: graph traversal (linear in the
// cone) and label scan (linear in the run with O(1) per vertex) — the
// label scan needs only the stored labels, not the run graph, which is
// exactly the deployment the paper targets.
package lineage

import (
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/provdata"
	"repro/internal/run"
)

// Upstream returns every run vertex that can reach v (excluding v), by
// reverse breadth-first search — the set of module executions v's output
// was derived from.
func Upstream(r *run.Run, v dag.VertexID) []dag.VertexID {
	return cone(r.Graph, v, true)
}

// Downstream returns every run vertex reachable from v (excluding v) —
// the module executions affected by v's output.
func Downstream(r *run.Run, v dag.VertexID) []dag.VertexID {
	return cone(r.Graph, v, false)
}

func cone(g *dag.Graph, v dag.VertexID, reverse bool) []dag.VertexID {
	seen := make([]bool, g.NumVertices())
	seen[v] = true
	queue := []dag.VertexID{v}
	var out []dag.VertexID
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		var next []dag.VertexID
		if reverse {
			next = g.In(x)
		} else {
			next = g.Out(x)
		}
		for _, w := range next {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
				queue = append(queue, w)
			}
		}
	}
	return out
}

// UpstreamByLabels returns the upstream cone of v using only reachability
// labels: a scan over all n vertices with one constant-time label
// comparison each. No run graph is required — only the labeling.
func UpstreamByLabels(l *core.Labeling, v dag.VertexID) []dag.VertexID {
	var out []dag.VertexID
	target := l.Label(v)
	for u := 0; u < l.NumVertices(); u++ {
		if dag.VertexID(u) == v {
			continue
		}
		if l.ReachableLabels(l.Label(dag.VertexID(u)), target) {
			out = append(out, dag.VertexID(u))
		}
	}
	return out
}

// DownstreamByLabels is the forward counterpart of UpstreamByLabels.
func DownstreamByLabels(l *core.Labeling, v dag.VertexID) []dag.VertexID {
	var out []dag.VertexID
	src := l.Label(v)
	for u := 0; u < l.NumVertices(); u++ {
		if dag.VertexID(u) == v {
			continue
		}
		if l.ReachableLabels(src, l.Label(dag.VertexID(u))) {
			out = append(out, dag.VertexID(u))
		}
	}
	return out
}

// Explain returns a concrete dependency path from u to v in the run
// graph (inclusive of both endpoints), or nil when v does not depend on
// u. It serves as human-checkable evidence for a positive reachability
// answer.
func Explain(r *run.Run, u, v dag.VertexID) []dag.VertexID {
	if u == v {
		return []dag.VertexID{u}
	}
	parent := make([]dag.VertexID, r.NumVertices())
	for i := range parent {
		parent[i] = -1
	}
	parent[u] = u
	queue := []dag.VertexID{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, w := range r.Graph.Out(x) {
			if parent[w] != -1 {
				continue
			}
			parent[w] = x
			if w == v {
				// Reconstruct.
				var path []dag.VertexID
				for at := v; ; at = parent[at] {
					path = append(path, at)
					if at == u {
						break
					}
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, w)
		}
	}
	return nil
}

// ExplainData returns a derivation chain of data items from y to x
// (inclusive): consecutive items x_{i+1} produced by a module that read
// x_i, witnessing that x depends on y. Returns nil when no dependency
// exists.
func ExplainData(r *run.Run, ann *provdata.Annotation, x, y provdata.ItemID) []provdata.ItemID {
	if x == y {
		return []provdata.ItemID{x}
	}
	// BFS over items: item a -> item b when some consumer of a is (or
	// reaches through channels carrying b's producer)... operationally:
	// b's producer is a consumer of a, or reachable from one. For a
	// faithful item-granular chain we link a -> b when b's producer
	// consumed a.
	producedBy := make(map[dag.VertexID][]provdata.ItemID)
	for i, it := range ann.Items {
		producedBy[it.Producer] = append(producedBy[it.Producer], provdata.ItemID(i))
	}
	// consumersOf[v] = items read by vertex v.
	readBy := make(map[dag.VertexID][]provdata.ItemID)
	for i, it := range ann.Items {
		for _, c := range it.Consumers {
			readBy[c] = append(readBy[c], provdata.ItemID(i))
		}
	}
	prev := make(map[provdata.ItemID]provdata.ItemID)
	seen := map[provdata.ItemID]bool{y: true}
	queue := []provdata.ItemID{y}
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		for _, consumer := range ann.Items[a].Consumers {
			for _, b := range producedBy[consumer] {
				if seen[b] {
					continue
				}
				seen[b] = true
				prev[b] = a
				if b == x {
					var chain []provdata.ItemID
					for at := x; ; at = prev[at] {
						chain = append(chain, at)
						if at == y {
							break
						}
					}
					for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
						chain[i], chain[j] = chain[j], chain[i]
					}
					return chain
				}
				queue = append(queue, b)
			}
		}
	}
	return nil
}

// ConeSubgraph extracts the induced provenance subgraph of v: all
// upstream vertices plus v and every edge among them, with a vertex map
// back to the original run. Useful for visualizing or archiving the
// derivation of a single result.
func ConeSubgraph(r *run.Run, v dag.VertexID) (*dag.Graph, []dag.VertexID) {
	members := append(Upstream(r, v), v)
	idx := make(map[dag.VertexID]dag.VertexID, len(members))
	for i, m := range members {
		idx[m] = dag.VertexID(i)
	}
	g := dag.New(len(members))
	for _, m := range members {
		for _, w := range r.Graph.Out(m) {
			if j, ok := idx[w]; ok {
				g.AddEdge(idx[m], j)
			}
		}
	}
	return g, members
}
